// Shared-memory vs p2p collective benchmarks (8 ranks on the 2-socket
// reference machine). Each google-benchmark iteration boots a full MPI
// job, runs kRounds of one collective inside it, and reports rank 0's
// wall time per round (manual time, so the job spawn/join cost is not
// measured). The /shm and /p2p variants of each benchmark differ only in
// Options::coll.enable_shm, so their ratio is the engine's win.
//
// Ranks run on the fiber executor: cooperative scheduling on one carrier
// thread makes the numbers dominated by the algorithms' actual data
// movement (copies, message hops) instead of kernel scheduler thrash,
// and keeps them meaningful on CI hosts with fewer cores than ranks.
//
// User counters are the "fewer copies" evidence: mailbox messages, bytes
// memcpy'd by the engine, and copies elided outright (the shared-image
// bcast where every rank passes the same buffer). Totals are divided by
// kRounds; the 4 warmup rounds inflate them by ~1.5%.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "mpi/runtime.hpp"
#include "topo/topology.hpp"

using namespace hlsmpc;
using ult::TaskContext;

namespace {

constexpr int kRanks = 8;
constexpr int kRounds = 64;
constexpr int kWarmup = 4;

/// Per-rank setup: returns the closure run every round, owning that
/// rank's buffers (ranks share the carrier thread under the fiber
/// executor, so buffers must be per-rank locals, not thread_local).
using CollSetup = std::function<std::function<void()>(
    mpi::Comm&, TaskContext&, int me)>;

mpi::ReduceFn sum_fn() {
  return [](void* inout, const void* in, std::size_t count) {
    double* x = static_cast<double*>(inout);
    const double* y = static_cast<const double*>(in);
    for (std::size_t i = 0; i < count; ++i) x[i] += y[i];
  };
}

/// Knobs a benchmark may override on top of the shared 8-rank fiber job.
struct RunOpts {
  bool shm = true;
  int rounds = kRounds;
  /// Monolithic control: clamp pipeline_threshold so every payload takes
  /// the PR 5 zero-copy path regardless of size.
  bool mono = false;
};

void run_rounds(benchmark::State& state, const RunOpts& ro,
                const CollSetup& setup) {
  const topo::Machine machine = topo::Machine::nehalem_ex(2);
  mpi::Options o;
  o.nranks = kRanks;
  o.executor = mpi::ExecutorKind::fiber;
  o.coll.enable_shm = ro.shm;
  if (ro.mono) {
    o.coll.pipeline_threshold = std::numeric_limits<std::size_t>::max();
  }
  const int rounds = ro.rounds;
  const int warmup = std::max(2, rounds / 16);
  double msgs = 0.0;
  double shm_bytes = 0.0;
  double elided = 0.0;
  double fragments = 0.0;
  for (auto _ : state) {
    mpi::Runtime rt(machine, o);
    std::atomic<std::int64_t> ns{0};
    rt.run([&](mpi::Comm& world, TaskContext& ctx) {
      const int me = world.rank(ctx);
      const std::function<void()> op = setup(world, ctx, me);
      for (int k = 0; k < warmup; ++k) op();
      world.barrier(ctx);
      const auto t0 = std::chrono::steady_clock::now();
      for (int k = 0; k < rounds; ++k) op();
      const auto t1 = std::chrono::steady_clock::now();
      if (me == 0) {
        ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                     .count());
      }
    });
    state.SetIterationTime(static_cast<double>(ns.load()) * 1e-9 / rounds);
    msgs = static_cast<double>(rt.stats().messages.load()) / rounds;
    shm_bytes =
        static_cast<double>(
            rt.stats().shm_copied_bytes.load(std::memory_order_relaxed)) /
        rounds;
    elided = static_cast<double>(
                 rt.stats().copies_elided.load(std::memory_order_relaxed)) /
             rounds;
    fragments =
        static_cast<double>(
            rt.stats().shm_fragments.load(std::memory_order_relaxed)) /
        rounds;
  }
  state.counters["msgs_per_round"] = benchmark::Counter(msgs);
  state.counters["shm_bytes_per_round"] = benchmark::Counter(shm_bytes);
  state.counters["elided_per_round"] = benchmark::Counter(elided);
  state.counters["frags_per_round"] = benchmark::Counter(fragments);
}

void run_rounds(benchmark::State& state, bool shm, const CollSetup& setup) {
  RunOpts ro;
  ro.shm = shm;
  run_rounds(state, ro, setup);
}

/// Round count for the message-size sweeps. Sweep benchmarks run exactly
/// one gbench iteration (see the Iterations(1) registrations): the
/// averaging lives in this internal batch instead of gbench's iteration
/// loop, because an iteration reports per-round manual time (~µs at the
/// small sizes) while actually costing rounds x that plus a full 8-rank
/// job boot — letting min_time drive the count would spawn thousands of
/// jobs chasing microseconds of manual-time budget. ~2 MB of traffic per
/// batch lands the 64 B points at ~32k rounds and keeps multi-megabyte
/// points at the 8-round floor.
int sweep_rounds(std::size_t bytes) {
  return static_cast<int>(std::max<std::size_t>(
      (std::size_t{2} << 20) / std::max<std::size_t>(bytes, 1), 8));
}

void BM_Bcast64K(benchmark::State& state, bool shm) {
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int) {
    auto buf =
        std::make_shared<std::vector<std::byte>>(64 * 1024, std::byte{3});
    return [&world, &ctx, buf] {
      world.bcast(ctx, buf->data(), buf->size(), 0);
    };
  });
}
BENCHMARK_CAPTURE(BM_Bcast64K, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Bcast64K, p2p, false)->UseManualTime();

void BM_BcastSharedImage64K(benchmark::State& state, bool shm) {
  // Every rank passes the same buffer (one address space — the HLS
  // shared-image pattern): the engine elides all n-1 copies. Only
  // meaningful on the shm path; p2p would recv into the shared buffer
  // from several ranks at once.
  auto shared =
      std::make_shared<std::vector<std::byte>>(64 * 1024, std::byte{5});
  run_rounds(state, shm, [shared](mpi::Comm& world, TaskContext& ctx, int) {
    return [&world, &ctx, shared] {
      world.bcast(ctx, shared->data(), shared->size(), 0);
    };
  });
}
BENCHMARK_CAPTURE(BM_BcastSharedImage64K, shm, true)->UseManualTime();

void BM_Allreduce128K(benchmark::State& state, bool shm) {
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int me) {
    constexpr std::size_t kCount = 16 * 1024;  // doubles, 128 KB
    auto in = std::make_shared<std::vector<double>>(
        kCount, static_cast<double>(me + 1));
    auto out = std::make_shared<std::vector<double>>(kCount);
    return [&world, &ctx, in, out] {
      world.allreduce(ctx, in->data(), out->data(), in->size(),
                      sizeof(double), sum_fn());
    };
  });
}
BENCHMARK_CAPTURE(BM_Allreduce128K, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Allreduce128K, p2p, false)->UseManualTime();

void BM_Allreduce64B(benchmark::State& state, bool shm) {
  // Small payload: the flat staged path (one copy through the inline
  // slot) against the p2p reduce+bcast funnel.
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int me) {
    constexpr std::size_t kCount = 8;  // doubles, 64 B
    auto in = std::make_shared<std::vector<double>>(
        kCount, static_cast<double>(me + 1));
    auto out = std::make_shared<std::vector<double>>(kCount);
    return [&world, &ctx, in, out] {
      world.allreduce(ctx, in->data(), out->data(), in->size(),
                      sizeof(double), sum_fn());
    };
  });
}
BENCHMARK_CAPTURE(BM_Allreduce64B, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Allreduce64B, p2p, false)->UseManualTime();

void BM_Allgather8K(benchmark::State& state, bool shm) {
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int me) {
    constexpr std::size_t kBytes = 8 * 1024;  // per rank
    auto in = std::make_shared<std::vector<std::byte>>(
        kBytes, static_cast<std::byte>(me));
    auto all = std::make_shared<std::vector<std::byte>>(kBytes * kRanks);
    return [&world, &ctx, in, all] {
      world.allgather(ctx, in->data(), in->size(), all->data());
    };
  });
}
BENCHMARK_CAPTURE(BM_Allgather8K, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Allgather8K, p2p, false)->UseManualTime();

void BM_Barrier(benchmark::State& state, bool shm) {
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int) {
    return [&world, &ctx] { world.barrier(ctx); };
  });
}
BENCHMARK_CAPTURE(BM_Barrier, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Barrier, p2p, false)->UseManualTime();

// ---- OSU-style message-size sweeps (64 B .. 1 MB, powers of two) ----
//
// One benchmark point per payload size on the shm engine's default
// selector, so the full small/staged -> zero-copy -> pipelined crossover
// curve lands in BENCH_coll.json and regressions at any size are caught
// by the bench gate. bytes_per_second turns the curve into throughput
// (payload bytes for bcast/allreduce, gathered total for allgather).

void BM_BcastSweep(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  RunOpts ro;
  ro.rounds = sweep_rounds(bytes);
  run_rounds(state, ro, [bytes](mpi::Comm& world, TaskContext& ctx, int) {
    auto buf = std::make_shared<std::vector<std::byte>>(bytes, std::byte{3});
    return [&world, &ctx, buf] {
      world.bcast(ctx, buf->data(), buf->size(), 0);
    };
  });
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BcastSweep)->RangeMultiplier(2)->Range(64, 1 << 20)
    ->UseManualTime()->Iterations(1);

void BM_AllreduceSweep(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t count = bytes / sizeof(double);
  RunOpts ro;
  ro.rounds = sweep_rounds(bytes);
  run_rounds(state, ro, [count](mpi::Comm& world, TaskContext& ctx, int me) {
    auto in = std::make_shared<std::vector<double>>(
        count, static_cast<double>(me + 1));
    auto out = std::make_shared<std::vector<double>>(count);
    return [&world, &ctx, in, out] {
      world.allreduce(ctx, in->data(), out->data(), in->size(),
                      sizeof(double), sum_fn());
    };
  });
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_AllreduceSweep)->RangeMultiplier(2)->Range(64, 1 << 20)
    ->UseManualTime()->Iterations(1);

void BM_AllgatherSweep(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));  // per rank
  RunOpts ro;
  ro.rounds = sweep_rounds(bytes * kRanks);
  run_rounds(state, ro, [bytes](mpi::Comm& world, TaskContext& ctx, int me) {
    auto in = std::make_shared<std::vector<std::byte>>(
        bytes, static_cast<std::byte>(me));
    auto all = std::make_shared<std::vector<std::byte>>(bytes * kRanks);
    return [&world, &ctx, in, all] {
      world.allgather(ctx, in->data(), in->size(), all->data());
    };
  });
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes * kRanks));
}
BENCHMARK(BM_AllgatherSweep)->RangeMultiplier(2)->Range(64, 1 << 20)
    ->UseManualTime()->Iterations(1);

// ---- pipelined vs monolithic zero-copy (the PR 7 acceptance pair) ----
//
// Same allreduce, same ranks, same engine: the only difference is the
// Mono variant clamping pipeline_threshold to SIZE_MAX so large payloads
// stay on the PR 5 monolithic path. check_coll_ratio.py holds the
// within-run ratio: pipelined >= 1.3x throughput at 4 MB (where per-rank
// working sets spill L2 and fragment blocking pays), no loss at 1 MB,
// and no small-message regression at 1 KB (where both variants select
// the identical staged path).

void BM_AllreducePipelined(benchmark::State& state, bool mono) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t count = bytes / sizeof(double);
  RunOpts ro;
  ro.rounds = sweep_rounds(bytes);
  ro.mono = mono;
  run_rounds(state, ro, [count](mpi::Comm& world, TaskContext& ctx, int me) {
    auto in = std::make_shared<std::vector<double>>(
        count, static_cast<double>(me + 1));
    auto out = std::make_shared<std::vector<double>>(count);
    return [&world, &ctx, in, out] {
      world.allreduce(ctx, in->data(), out->data(), in->size(),
                      sizeof(double), sum_fn());
    };
  });
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK_CAPTURE(BM_AllreducePipelined, pipe, false)
    ->Arg(1024)->Arg(1 << 20)->Arg(4 << 20)->UseManualTime()->Iterations(1);
BENCHMARK_CAPTURE(BM_AllreducePipelined, mono, true)
    ->Arg(1024)->Arg(1 << 20)->Arg(4 << 20)->UseManualTime()->Iterations(1);

/// Seconds per allreduce round for one freshly booted 8-rank job.
double allreduce_round_seconds(std::size_t count, bool mono, int rounds) {
  const topo::Machine machine = topo::Machine::nehalem_ex(2);
  mpi::Options o;
  o.nranks = kRanks;
  o.executor = mpi::ExecutorKind::fiber;
  if (mono) {
    o.coll.pipeline_threshold = std::numeric_limits<std::size_t>::max();
  }
  const int warmup = std::max(2, rounds / 16);
  std::atomic<std::int64_t> ns{0};
  mpi::Runtime rt(machine, o);
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    std::vector<double> in(count, static_cast<double>(me + 1));
    std::vector<double> out(count);
    const auto op = [&] {
      world.allreduce(ctx, in.data(), out.data(), count, sizeof(double),
                      sum_fn());
    };
    for (int k = 0; k < warmup; ++k) op();
    world.barrier(ctx);
    const auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < rounds; ++k) op();
    const auto t1 = std::chrono::steady_clock::now();
    if (me == 0) {
      ns.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count());
    }
  });
  return static_cast<double>(ns.load()) * 1e-9 / rounds;
}

// The gated acceptance number. The /pipe and /mono points above draw the
// curve, but single-batch cross-benchmark ratios inherit the host's load
// drift (this VM swings 30%+ between batches); this benchmark interleaves
// mono and pipelined batches rep by rep and gates on the ratio of each
// variant's MINIMUM batch time. External load and CPU steal only ever
// inflate a batch, so the min over several interleaved reps is each
// path's quiet-window cost — the machine-intrinsic number — where a
// median of per-rep ratios still collapses when steal is sustained
// across most reps. check_coll_ratio.py holds the bounds on the
// speedup_best counter; speedup_median rides along as context.
void BM_AllreducePipelineSpeedup(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::size_t count = bytes / sizeof(double);
  const int rounds = sweep_rounds(bytes);
  constexpr int kReps = 7;
  for (auto _ : state) {
    std::vector<double> ratios;
    double pipe_min = std::numeric_limits<double>::infinity();
    double mono_min = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      const double m = allreduce_round_seconds(count, /*mono=*/true, rounds);
      const double p = allreduce_round_seconds(count, /*mono=*/false, rounds);
      mono_min = std::min(mono_min, m);
      pipe_min = std::min(pipe_min, p);
      ratios.push_back(m / p);
    }
    std::sort(ratios.begin(), ratios.end());
    state.SetIterationTime(pipe_min);
    state.counters["speedup_best"] = benchmark::Counter(mono_min / pipe_min);
    state.counters["speedup_median"] = benchmark::Counter(ratios[kReps / 2]);
    state.counters["mono_us"] = benchmark::Counter(mono_min * 1e6);
    state.counters["pipe_us"] = benchmark::Counter(pipe_min * 1e6);
  }
}
BENCHMARK(BM_AllreducePipelineSpeedup)
    ->Arg(1024)->Arg(1 << 20)->Arg(4 << 20)->UseManualTime()->Iterations(1);

}  // namespace

// main: bench/gbench_main.cpp (stamps hlsmpc_build_type into the context)
