// Shared-memory vs p2p collective benchmarks (8 ranks on the 2-socket
// reference machine). Each google-benchmark iteration boots a full MPI
// job, runs kRounds of one collective inside it, and reports rank 0's
// wall time per round (manual time, so the job spawn/join cost is not
// measured). The /shm and /p2p variants of each benchmark differ only in
// Options::coll.enable_shm, so their ratio is the engine's win.
//
// Ranks run on the fiber executor: cooperative scheduling on one carrier
// thread makes the numbers dominated by the algorithms' actual data
// movement (copies, message hops) instead of kernel scheduler thrash,
// and keeps them meaningful on CI hosts with fewer cores than ranks.
//
// User counters are the "fewer copies" evidence: mailbox messages, bytes
// memcpy'd by the engine, and copies elided outright (the shared-image
// bcast where every rank passes the same buffer). Totals are divided by
// kRounds; the 4 warmup rounds inflate them by ~1.5%.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "mpi/runtime.hpp"
#include "topo/topology.hpp"

using namespace hlsmpc;
using ult::TaskContext;

namespace {

constexpr int kRanks = 8;
constexpr int kRounds = 64;
constexpr int kWarmup = 4;

/// Per-rank setup: returns the closure run every round, owning that
/// rank's buffers (ranks share the carrier thread under the fiber
/// executor, so buffers must be per-rank locals, not thread_local).
using CollSetup = std::function<std::function<void()>(
    mpi::Comm&, TaskContext&, int me)>;

mpi::ReduceFn sum_fn() {
  return [](void* inout, const void* in, std::size_t count) {
    double* x = static_cast<double*>(inout);
    const double* y = static_cast<const double*>(in);
    for (std::size_t i = 0; i < count; ++i) x[i] += y[i];
  };
}

void run_rounds(benchmark::State& state, bool shm, const CollSetup& setup) {
  const topo::Machine machine = topo::Machine::nehalem_ex(2);
  mpi::Options o;
  o.nranks = kRanks;
  o.executor = mpi::ExecutorKind::fiber;
  o.coll.enable_shm = shm;
  double msgs = 0.0;
  double shm_bytes = 0.0;
  double elided = 0.0;
  for (auto _ : state) {
    mpi::Runtime rt(machine, o);
    std::atomic<std::int64_t> ns{0};
    rt.run([&](mpi::Comm& world, TaskContext& ctx) {
      const int me = world.rank(ctx);
      const std::function<void()> op = setup(world, ctx, me);
      for (int k = 0; k < kWarmup; ++k) op();
      world.barrier(ctx);
      const auto t0 = std::chrono::steady_clock::now();
      for (int k = 0; k < kRounds; ++k) op();
      const auto t1 = std::chrono::steady_clock::now();
      if (me == 0) {
        ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                     .count());
      }
    });
    state.SetIterationTime(static_cast<double>(ns.load()) * 1e-9 / kRounds);
    msgs = static_cast<double>(rt.stats().messages.load()) / kRounds;
    shm_bytes =
        static_cast<double>(
            rt.stats().shm_copied_bytes.load(std::memory_order_relaxed)) /
        kRounds;
    elided = static_cast<double>(
                 rt.stats().copies_elided.load(std::memory_order_relaxed)) /
             kRounds;
  }
  state.counters["msgs_per_round"] = benchmark::Counter(msgs);
  state.counters["shm_bytes_per_round"] = benchmark::Counter(shm_bytes);
  state.counters["elided_per_round"] = benchmark::Counter(elided);
}

void BM_Bcast64K(benchmark::State& state, bool shm) {
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int) {
    auto buf =
        std::make_shared<std::vector<std::byte>>(64 * 1024, std::byte{3});
    return [&world, &ctx, buf] {
      world.bcast(ctx, buf->data(), buf->size(), 0);
    };
  });
}
BENCHMARK_CAPTURE(BM_Bcast64K, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Bcast64K, p2p, false)->UseManualTime();

void BM_BcastSharedImage64K(benchmark::State& state, bool shm) {
  // Every rank passes the same buffer (one address space — the HLS
  // shared-image pattern): the engine elides all n-1 copies. Only
  // meaningful on the shm path; p2p would recv into the shared buffer
  // from several ranks at once.
  auto shared =
      std::make_shared<std::vector<std::byte>>(64 * 1024, std::byte{5});
  run_rounds(state, shm, [shared](mpi::Comm& world, TaskContext& ctx, int) {
    return [&world, &ctx, shared] {
      world.bcast(ctx, shared->data(), shared->size(), 0);
    };
  });
}
BENCHMARK_CAPTURE(BM_BcastSharedImage64K, shm, true)->UseManualTime();

void BM_Allreduce128K(benchmark::State& state, bool shm) {
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int me) {
    constexpr std::size_t kCount = 16 * 1024;  // doubles, 128 KB
    auto in = std::make_shared<std::vector<double>>(
        kCount, static_cast<double>(me + 1));
    auto out = std::make_shared<std::vector<double>>(kCount);
    return [&world, &ctx, in, out] {
      world.allreduce(ctx, in->data(), out->data(), in->size(),
                      sizeof(double), sum_fn());
    };
  });
}
BENCHMARK_CAPTURE(BM_Allreduce128K, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Allreduce128K, p2p, false)->UseManualTime();

void BM_Allreduce64B(benchmark::State& state, bool shm) {
  // Small payload: the flat staged path (one copy through the inline
  // slot) against the p2p reduce+bcast funnel.
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int me) {
    constexpr std::size_t kCount = 8;  // doubles, 64 B
    auto in = std::make_shared<std::vector<double>>(
        kCount, static_cast<double>(me + 1));
    auto out = std::make_shared<std::vector<double>>(kCount);
    return [&world, &ctx, in, out] {
      world.allreduce(ctx, in->data(), out->data(), in->size(),
                      sizeof(double), sum_fn());
    };
  });
}
BENCHMARK_CAPTURE(BM_Allreduce64B, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Allreduce64B, p2p, false)->UseManualTime();

void BM_Allgather8K(benchmark::State& state, bool shm) {
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int me) {
    constexpr std::size_t kBytes = 8 * 1024;  // per rank
    auto in = std::make_shared<std::vector<std::byte>>(
        kBytes, static_cast<std::byte>(me));
    auto all = std::make_shared<std::vector<std::byte>>(kBytes * kRanks);
    return [&world, &ctx, in, all] {
      world.allgather(ctx, in->data(), in->size(), all->data());
    };
  });
}
BENCHMARK_CAPTURE(BM_Allgather8K, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Allgather8K, p2p, false)->UseManualTime();

void BM_Barrier(benchmark::State& state, bool shm) {
  run_rounds(state, shm, [](mpi::Comm& world, TaskContext& ctx, int) {
    return [&world, &ctx] { world.barrier(ctx); };
  });
}
BENCHMARK_CAPTURE(BM_Barrier, shm, true)->UseManualTime();
BENCHMARK_CAPTURE(BM_Barrier, p2p, false)->UseManualTime();

}  // namespace

BENCHMARK_MAIN();
