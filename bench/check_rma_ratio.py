#!/usr/bin/env python3
"""Check bench_rma's same-node transfer bound: 64 KB put within 2x of a
raw memcpy loop (the RMA acceptance criterion).

Usage: check_rma_ratio.py CANDIDATE.json [--max-ratio 2.0]

Both sides come from the same benchmark run, so the check is immune to
the absolute-timing noise that makes cross-run gates on nanosecond
kernels flaky: whatever the machine's state, put and memcpy saw it
equally.
"""

import argparse
import json
import sys

PUT = "BM_Put/65536"
MEMCPY = "BM_RawMemcpy/65536"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("candidate")
    ap.add_argument("--max-ratio", type=float, default=2.0)
    args = ap.parse_args()

    with open(args.candidate) as f:
        doc = json.load(f)
    times = {b["name"]: b["real_time"] for b in doc.get("benchmarks", [])
             if isinstance(b, dict) and "real_time" in b}
    missing = [n for n in (PUT, MEMCPY) if n not in times]
    if missing:
        print(f"check_rma_ratio: missing benchmarks: {', '.join(missing)}")
        return 2
    ratio = times[PUT] / times[MEMCPY]
    verdict = "ok" if ratio <= args.max_ratio else "REGRESSION"
    print(f"{PUT} = {ratio:.2f}x {MEMCPY} "
          f"(bound {args.max_ratio:.2f}x)  {verdict}")
    return 0 if ratio <= args.max_ratio else 1


if __name__ == "__main__":
    sys.exit(main())
