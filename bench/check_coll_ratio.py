#!/usr/bin/env python3
"""Check the pipelined-collective acceptance bounds within one bench_coll
run.

The gated number is BM_AllreducePipelineSpeedup's speedup_best counter:
that benchmark interleaves monolithic and pipelined batches rep by rep
inside one process and reports the ratio of each variant's minimum batch
time. External load only ever inflates a batch, so the min over several
interleaved reps is each path's quiet-window cost — the machine-intrinsic
number the bound is about — immune to the load drift that makes
cross-benchmark (let alone cross-run) timing diffs flake on shared
hosts. Bounds: at 4 MB — where
the per-rank working set spills L2 and fragment blocking pays — the
pipelined path must win by --min-speedup; at 1 MB (near the crossover)
it must at least break even; at 1 KB — where both variants select the
identical staged path — the pipelined configuration must not cost more
than --small-slack.

The message-size sweep families (BM_BcastSweep, BM_AllreduceSweep,
BM_AllgatherSweep) are checked for presence at every power-of-two point:
the crossover curve must be complete in the candidate even though its
absolute times are too load-sensitive to diff against a baseline.

Usage: check_coll_ratio.py CANDIDATE.json [--min-speedup 1.3]
                                          [--mid-floor 0.95]
                                          [--small-slack 1.15]
"""

import argparse
import json
import sys

SPEEDUP_SIZE = 4 << 20
MID_SIZE = 1 << 20
SMALL_SIZE = 1024

SWEEP_FAMILIES = ("BM_BcastSweep", "BM_AllreduceSweep", "BM_AllgatherSweep")
SWEEP_SIZES = [64 << i for i in range(15)]  # 64 B .. 1 MB


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("candidate")
    ap.add_argument("--min-speedup", type=float, default=1.3,
                    help="required median mono/pipelined time ratio at 4 MB "
                         "(default 1.3)")
    ap.add_argument("--mid-floor", type=float, default=0.95,
                    help="min median mono/pipelined time ratio at 1 MB "
                         "(default 0.95: break even within noise)")
    ap.add_argument("--small-slack", type=float, default=1.15,
                    help="max median pipelined/mono time ratio at 1 KB "
                         "(default 1.15)")
    args = ap.parse_args()

    with open(args.candidate) as f:
        doc = json.load(f)
    entries = {b["name"]: b for b in doc.get("benchmarks", [])
               if isinstance(b, dict) and "name" in b}

    failures = []

    bounds = {
        SPEEDUP_SIZE: ("4 MB", args.min_speedup),
        MID_SIZE: ("1 MB", args.mid_floor),
        SMALL_SIZE: ("1 KB", 1.0 / args.small_slack),
    }
    for size, (label, floor) in bounds.items():
        name = f"BM_AllreducePipelineSpeedup/{size}/iterations:1/manual_time"
        entry = entries.get(name)
        if entry is None or "speedup_best" not in entry:
            print(f"check_coll_ratio: missing speedup_best for {label}")
            return 2
        speedup = entry["speedup_best"]
        median = entry.get("speedup_median", float("nan"))
        verdict = "ok" if speedup >= floor else "REGRESSION"
        if verdict != "ok":
            failures.append(name)
        print(f"allreduce {label:>5}: pipelined speedup_best {speedup:.2f}x "
              f"(median {median:.2f}x, bound >= {floor:.2f}x)  {verdict}")

    for family in SWEEP_FAMILIES:
        missing = [s for s in SWEEP_SIZES
                   if f"{family}/{s}/iterations:1/manual_time" not in entries]
        if missing:
            failures.append(family)
            print(f"{family}: missing sweep points {missing}")
        else:
            print(f"{family}: all {len(SWEEP_SIZES)} sweep points present")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
