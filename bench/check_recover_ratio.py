#!/usr/bin/env python3
"""Check bench_recover's acceptance bounds as within-run ratios:

  - restoring a 4 MiB scope checkpoint from the page cache within 4x of
    a raw memcpy of the same payload
    (BM_RestoreVsMemcpy/4194304 restore_ratio_best);
  - one shrink() on a 4-node x 2-rank cluster within 50x of one cluster
    barrier round on the same topology
    (BM_ShrinkVsBarrier shrink_ratio_best).

Usage: check_recover_ratio.py CANDIDATE.json
       [--max-restore-ratio 4.0] [--max-shrink-ratio 50.0]

Both sides of each ratio come from interleaved reps of one benchmark
run, gated on minimums (external load only ever inflates a rep), so the
check is immune to the absolute-timing noise that makes cross-run gates
on shared VMs flaky.
"""

import argparse
import json
import sys

RESTORE = "BM_RestoreVsMemcpy/4194304/iterations:1/manual_time"
SHRINK = "BM_ShrinkVsBarrier/iterations:1/manual_time"


def find(doc, name):
    for b in doc.get("benchmarks", []):
        if isinstance(b, dict) and b.get("name") == name:
            return b
    return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("candidate")
    ap.add_argument("--max-restore-ratio", type=float, default=4.0)
    ap.add_argument("--max-shrink-ratio", type=float, default=50.0)
    args = ap.parse_args()

    with open(args.candidate) as f:
        doc = json.load(f)

    bounds = [
        (RESTORE, "restore_ratio_best", args.max_restore_ratio,
         "4 MiB restore vs memcpy"),
        (SHRINK, "shrink_ratio_best", args.max_shrink_ratio,
         "4x2 shrink vs barrier round"),
    ]
    rc = 0
    for name, counter, bound, what in bounds:
        b = find(doc, name)
        if b is None or counter not in b:
            print(f"check_recover_ratio: missing {name}.{counter}")
            rc = max(rc, 2)
            continue
        ratio = float(b[counter])
        verdict = "ok" if ratio <= bound else "REGRESSION"
        print(f"{what}: {ratio:.2f}x (bound {bound:.2f}x)  {verdict}")
        if ratio > bound:
            rc = max(rc, 1)
    return rc


if __name__ == "__main__":
    sys.exit(main())
