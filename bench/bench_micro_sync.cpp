// Micro-benchmarks of the HLS runtime primitives (paper §IV.A-B):
//  - hls_get_addr resolution cost (the per-access overhead the paper
//    calls "negligible" in §V.B),
//  - barrier: flat counter algorithm vs the shared-cache-aware
//    hierarchical algorithm (design decision 2 in DESIGN.md),
//  - single (modified barrier, §IV.B) vs the naive barrier/flag/barrier
//    formulation it replaces (design decision 1),
//  - single nowait (generation counters).
//
// Multi-threaded numbers are relative: this host may oversubscribe the
// benchmark threads onto fewer physical cores.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "hls/hls.hpp"
#include "ult/task_context.hpp"

using namespace hlsmpc;

namespace {

/// Shared fixture for N-thread synchronization benches. Leaked on purpose
/// (google-benchmark offers no cross-thread teardown point).
struct SyncFixture {
  topo::Machine machine = topo::Machine::nehalem_ex(4);
  hls::Runtime rt;
  hls::Var<int> var;

  SyncFixture(int nthreads, const topo::ScopeSpec& scope, bool force_flat)
      : rt(machine, nthreads) {
    rt.sync().force_flat(force_flat);
    hls::ModuleBuilder mb(rt.registry(), "bench");
    var = hls::add_var<int>(mb, "v", scope);
    mb.commit();
  }
};

/// Diffs a set of obs counters for the calling task around the timed
/// loop and reports the deltas as google-benchmark user counters (summed
/// over threads in the report). No-op when the observability layer is
/// compiled out (rt.obs() == nullptr), so the baseline JSON — recorded
/// before these columns existed — still compares cleanly: compare.py
/// only diffs counters present in both runs.
class ObsProbe {
 public:
  ObsProbe(hls::Runtime& rt, int task,
           std::initializer_list<obs::Counter> ctrs)
      : rec_(rt.obs()), task_(task), ctrs_(ctrs) {
    if (rec_ == nullptr) return;
    for (obs::Counter c : ctrs_) start_.push_back(rec_->counter(task_, c));
  }

  void report(benchmark::State& state) const {
    if (rec_ == nullptr) return;
    for (std::size_t i = 0; i < ctrs_.size(); ++i) {
      state.counters[obs::to_string(ctrs_[i])] = benchmark::Counter(
          static_cast<double>(rec_->counter(task_, ctrs_[i]) - start_[i]));
    }
  }

 private:
  obs::Recorder* rec_;
  int task_;
  std::vector<obs::Counter> ctrs_;
  std::vector<std::uint64_t> start_;
};

/// Thread-local context pinned so that threads spread across sockets.
ult::ThreadTaskContext make_ctx(const benchmark::State& state,
                                const topo::Machine& machine) {
  ult::ThreadTaskContext ctx;
  ctx.set_task_id(state.thread_index());
  // Spread thread i evenly over [0, num_cpus): proportional placement
  // instead of a stride, which collapsed to 1 (piling every thread onto
  // the low cpus, off the end of the machine for threads > num_cpus).
  const long n = machine.num_cpus();
  ctx.set_cpu(static_cast<int>(
      state.thread_index() * n / state.threads() % n));
  return ctx;
}

void BM_GetAddrNode(benchmark::State& state) {
  static SyncFixture* f =
      new SyncFixture(1, topo::node_scope(), /*force_flat=*/false);
  ult::ThreadTaskContext ctx = make_ctx(state, f->machine);
  f->rt.bind_task(ctx);
  ObsProbe probe(f->rt, ctx.task_id(),
                 {obs::Counter::get_addr_warm, obs::Counter::get_addr_cold});
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->rt.get_addr(f->var.handle(), ctx));
  }
  probe.report(state);
}
BENCHMARK(BM_GetAddrNode);

void BM_GetAddrNodeMT(benchmark::State& state) {
  // Concurrent warm resolution from several tasks: each hits its own
  // per-task address cache, so this should scale like the 1-thread case.
  static SyncFixture* f =
      new SyncFixture(4, topo::node_scope(), /*force_flat=*/false);
  ult::ThreadTaskContext ctx = make_ctx(state, f->machine);
  f->rt.bind_task(ctx);
  ObsProbe probe(f->rt, ctx.task_id(),
                 {obs::Counter::get_addr_warm, obs::Counter::get_addr_cold});
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->rt.get_addr(f->var.handle(), ctx));
  }
  probe.report(state);
}
BENCHMARK(BM_GetAddrNodeMT)->Threads(4)->UseRealTime();

void BM_GetAddrViaTypedVar(benchmark::State& state) {
  static SyncFixture* f =
      new SyncFixture(1, topo::numa_scope(), /*force_flat=*/false);
  ult::ThreadTaskContext ctx = make_ctx(state, f->machine);
  hls::TaskView view(f->rt, ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(&view.get(f->var));
  }
}
BENCHMARK(BM_GetAddrViaTypedVar);

void BM_BarrierFlat(benchmark::State& state) {
  static SyncFixture* f =
      new SyncFixture(8, topo::node_scope(), /*force_flat=*/true);
  ult::ThreadTaskContext ctx = make_ctx(state, f->machine);
  f->rt.bind_task(ctx);
  ObsProbe probe(f->rt, ctx.task_id(), {obs::Counter::barrier_entries});
  const hls::ScopeSet set(f->rt, {f->var.handle()});
  for (auto _ : state) {
    f->rt.barrier(set, ctx);
  }
  probe.report(state);
}
BENCHMARK(BM_BarrierFlat)->Threads(8)->UseRealTime();

void BM_BarrierHierarchical(benchmark::State& state) {
  static SyncFixture* f =
      new SyncFixture(8, topo::node_scope(), /*force_flat=*/false);
  ult::ThreadTaskContext ctx = make_ctx(state, f->machine);
  f->rt.bind_task(ctx);
  ObsProbe probe(f->rt, ctx.task_id(), {obs::Counter::barrier_entries});
  const hls::ScopeSet set(f->rt, {f->var.handle()});
  for (auto _ : state) {
    f->rt.barrier(set, ctx);
  }
  probe.report(state);
}
BENCHMARK(BM_BarrierHierarchical)->Threads(8)->UseRealTime();

void BM_Single(benchmark::State& state) {
  static SyncFixture* f =
      new SyncFixture(8, topo::node_scope(), /*force_flat=*/false);
  ult::ThreadTaskContext ctx = make_ctx(state, f->machine);
  hls::TaskView view(f->rt, ctx);
  ObsProbe probe(f->rt, ctx.task_id(),
                 {obs::Counter::single_wins, obs::Counter::single_losses});
  int sink = 0;
  for (auto _ : state) {
    view.single({f->var.handle()}, [&] { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
  probe.report(state);
}
BENCHMARK(BM_Single)->Threads(8)->UseRealTime();

void BM_SingleNaiveBarrierPair(benchmark::State& state) {
  // The formulation the paper's modified-barrier single avoids: barrier,
  // one designated task runs the block, barrier.
  static SyncFixture* f =
      new SyncFixture(8, topo::node_scope(), /*force_flat=*/false);
  ult::ThreadTaskContext ctx = make_ctx(state, f->machine);
  hls::TaskView view(f->rt, ctx);
  int sink = 0;
  for (auto _ : state) {
    view.barrier({f->var.handle()});
    if (state.thread_index() == 0) ++sink;
    view.barrier({f->var.handle()});
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SingleNaiveBarrierPair)->Threads(8)->UseRealTime();

void BM_SingleNowait(benchmark::State& state) {
  static SyncFixture* f =
      new SyncFixture(8, topo::node_scope(), /*force_flat=*/false);
  ult::ThreadTaskContext ctx = make_ctx(state, f->machine);
  hls::TaskView view(f->rt, ctx);
  ObsProbe probe(f->rt, ctx.task_id(),
                 {obs::Counter::nowait_claims, obs::Counter::nowait_skips});
  int sink = 0;
  for (auto _ : state) {
    view.single_nowait({f->var.handle()}, [&] { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
  probe.report(state);
}
BENCHMARK(BM_SingleNowait)->Threads(8)->UseRealTime();

}  // namespace

// main: bench/gbench_main.cpp (stamps hlsmpc_build_type into the context)
