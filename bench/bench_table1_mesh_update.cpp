// Reproduces Table I: "Performance improvement due to cache footprint
// reduction on the mesh update benchmark on 4 Nehalem-EX processors."
//
// Weak-scaling parallel efficiency (t_seq / t_par) of the mesh-update
// benchmark for sub-domain sizes small/medium/large x {no-update, update}
// x {without HLS, HLS node, HLS numa}, on the simulated 4-socket
// Nehalem-EX machine. Caches and working sets are both scaled by
// 1/kScale relative to the paper's hardware, preserving all capacity
// ratios (see DESIGN.md). Expected shape: without-HLS rows in the
// 30-40 % range, HLS rows near 100 %, numa >= node on the update side.
//
// Usage: bench_table1_mesh_update [--quick] [--sockets N]
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/meshupdate/mesh_update.hpp"

using namespace hlsmpc;
using apps::meshupdate::Config;
using apps::meshupdate::Mode;

namespace {

constexpr int kScale = 64;  // capacity divisor vs the paper's machine

struct Setting {
  const char* name;
  std::size_t cells;  // paper: 50^3 / 100^3 / 200^3 doubles, scaled
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int sockets = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--sockets") == 0 && i + 1 < argc) {
      sockets = std::atoi(argv[++i]);
    }
  }
  const topo::Machine machine = topo::Machine::nehalem_ex(sockets, kScale);
  const int ntasks = machine.num_cpus();

  // Paper sizes (bytes per task): 1 MB / 8 MB / 60 MB; table 8 MB.
  const Setting settings[] = {
      {"small", (1u << 20) / kScale / sizeof(double)},
      {"medium", (8u << 20) / kScale / sizeof(double)},
      {"large", (60u << 20) / kScale / sizeof(double)},
  };
  const std::size_t table_cells = (8u << 20) / kScale / sizeof(double);

  std::printf("Table I reproduction: mesh update parallel efficiency\n");
  std::printf("machine: %s (x1/%d capacity), %d tasks, table %zu KB/copy\n\n",
              machine.name().c_str(), kScale, ntasks,
              table_cells * sizeof(double) >> 10);
  std::printf("%-14s | %-28s | %-28s\n", "", "without update", "with update");
  std::printf("%-14s | %8s %8s %8s | %8s %8s %8s\n", "mesh size", "small",
              "medium", "large", "small", "medium", "large");
  std::printf("---------------+------------------------------+-----------"
              "-------------------\n");

  const Mode modes[] = {Mode::no_hls, Mode::hls_node, Mode::hls_numa};
  for (Mode mode : modes) {
    double eff[2][3];
    for (int upd = 0; upd < 2; ++upd) {
      for (int s = 0; s < 3; ++s) {
        Config cfg;
        cfg.mode = mode;
        cfg.update_table = upd == 1;
        cfg.cells_per_task = quick ? settings[s].cells / 4 : settings[s].cells;
        cfg.table_cells = table_cells;
        // Enough steps that the one-off table load amortizes, as in the
        // paper's long runs.
        cfg.timesteps = quick ? 3 : 5;
        const auto r = apps::meshupdate::simulate(machine, cfg, ntasks);
        eff[upd][s] = r.efficiency;
      }
    }
    std::printf("%-14s | %7.0f%% %7.0f%% %7.0f%% | %7.0f%% %7.0f%% %7.0f%%\n",
                to_string(mode), 100 * eff[0][0], 100 * eff[0][1],
                100 * eff[0][2], 100 * eff[1][0], 100 * eff[1][1],
                100 * eff[1][2]);
  }
  std::printf(
      "\npaper (4 sockets, real hardware):\n"
      "without HLS    |      37%%      39%%      40%% |      30%%      37%%"
      "      40%%\n"
      "HLS node       |      94%%      93%%      99%% |      65%%      87%%"
      "      95%%\n"
      "HLS numa       |      94%%      93%%      99%% |      88%%      92%%"
      "      97%%\n");
  return 0;
}
