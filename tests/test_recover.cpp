// Shrink-and-recover: the full fault-tolerance story end to end.
//
// The load-bearing checks:
//  - kill -> shrink -> continue: a fabric-killed node no longer ends the
//    job. Survivors get a NodeDeadError, run ClusterComm::shrink(), and a
//    subsequent NON-COMMUTATIVE allreduce on the shrunken communicator
//    produces the exact ascending-global-rank fold over the survivors —
//    swept over 2..4 nodes x 1..4 ranks per node;
//  - kill -> respawn -> continue: SimCluster::respawn re-creates the dead
//    node, readmits it, and the full world works again (including the
//    injected launch-failure path of the "cluster:respawn" site);
//  - the shrink agreement survives a ScheduleExplorer sweep (its
//    "shrink:round" sync point makes every round's interleaving
//    explorable);
//  - HLS checkpoint/restore: bit-identical round trip, torn-write
//    fallback to the previous version ("ckpt:write" injection), pruning,
//    and the warm-restart composition — a respawned node restored from a
//    checkpoint reads back exactly the committed scope data.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/deterministic_executor.hpp"
#include "check/explorer.hpp"
#include "fault/injector.hpp"
#include "hls/checkpoint.hpp"
#include "hls/hls.hpp"
#include "mpi/mpi.hpp"
#include "mpi/recover.hpp"
#include "obs/recorder.hpp"

namespace check = hlsmpc::check;
namespace fault = hlsmpc::fault;
namespace hls = hlsmpc::hls;
namespace mpi = hlsmpc::mpi;
namespace obs = hlsmpc::obs;
namespace topo = hlsmpc::topo;
using hlsmpc::ult::TaskContext;

namespace {

// ---- the non-commutative operator (test_coll.cpp's algebra) ----

constexpr std::int64_t kMod = 1009;

struct Mat {
  std::int32_t a, b, c, d;
  friend bool operator==(const Mat&, const Mat&) = default;
};

Mat mul(const Mat& x, const Mat& y) {
  const auto m = [](std::int64_t v) {
    return static_cast<std::int32_t>(((v % kMod) + kMod) % kMod);
  };
  return Mat{
      m(static_cast<std::int64_t>(x.a) * y.a +
        static_cast<std::int64_t>(x.b) * y.c),
      m(static_cast<std::int64_t>(x.a) * y.b +
        static_cast<std::int64_t>(x.b) * y.d),
      m(static_cast<std::int64_t>(x.c) * y.a +
        static_cast<std::int64_t>(x.d) * y.c),
      m(static_cast<std::int64_t>(x.c) * y.b +
        static_cast<std::int64_t>(x.d) * y.d),
  };
}

mpi::ReduceFn mat_fn() {
  return [](void* inout, const void* in, std::size_t count) {
    Mat* x = static_cast<Mat*>(inout);
    const Mat* y = static_cast<const Mat*>(in);
    for (std::size_t i = 0; i < count; ++i) x[i] = mul(x[i], y[i]);
  };
}

Mat contrib(int r, std::size_t i) {
  return Mat{static_cast<std::int32_t>(1 + (2 * r + i) % 5),
             static_cast<std::int32_t>((r + 2 * i + 1) % 7),
             static_cast<std::int32_t>((r * r + 3 * i + 2) % 6),
             static_cast<std::int32_t>(1 + (3 * r + 2 * i) % 4)};
}

std::vector<Mat> make_contrib(int r, std::size_t count) {
  std::vector<Mat> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = contrib(r, i);
  return v;
}

/// Ascending fold over an explicit global-rank list — what a shrunken
/// communicator must produce: the exact fold over SURVIVING contributions.
std::vector<Mat> reference_over(const std::vector<int>& granks,
                                std::size_t count) {
  std::vector<Mat> ref = make_contrib(granks.front(), count);
  for (std::size_t k = 1; k < granks.size(); ++k) {
    for (std::size_t i = 0; i < count; ++i) {
      ref[i] = mul(ref[i], contrib(granks[k], i));
    }
  }
  return ref;
}

std::vector<Mat> reference(int upto, std::size_t count) {
  std::vector<int> granks;
  for (int r = 0; r <= upto; ++r) granks.push_back(r);
  return reference_over(granks, count);
}

struct Param {
  int nnodes;
  int rpn;
  mpi::ExecutorKind exec;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  return std::to_string(info.param.nnodes) + "nodes_" +
         std::to_string(info.param.rpn) + "rpn_" +
         (info.param.exec == mpi::ExecutorKind::thread ? "thread" : "fiber");
}

mpi::ClusterOptions copts(const Param& p) {
  mpi::ClusterOptions o;
  o.nnodes = p.nnodes;
  o.ranks_per_node = p.rpn;
  o.executor = p.exec;
  return o;
}

class RecoverParam : public testing::TestWithParam<Param> {
 protected:
  mpi::SimCluster cluster_{copts(GetParam())};
  int nranks_ = cluster_.nranks();
};

/// Global ranks of every node except `victim`, ascending.
std::vector<int> surviving_granks(int nnodes, int rpn, int victim) {
  std::vector<int> g;
  for (int n = 0; n < nnodes; ++n) {
    if (n == victim) continue;
    for (int l = 0; l < rpn; ++l) g.push_back(n * rpn + l);
  }
  return g;
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoverParam,
    testing::Values(Param{2, 1, mpi::ExecutorKind::thread},
                    Param{2, 2, mpi::ExecutorKind::thread},
                    Param{3, 2, mpi::ExecutorKind::thread},
                    Param{3, 4, mpi::ExecutorKind::thread},
                    Param{4, 1, mpi::ExecutorKind::thread},
                    Param{4, 4, mpi::ExecutorKind::thread},
                    Param{2, 2, mpi::ExecutorKind::fiber}),
    param_name);

// ---- kill -> shrink -> continue ----

TEST_P(RecoverParam, KillShrinkContinueFoldsOverSurvivors) {
  const std::size_t count = 65;  // past the shm engine's small threshold
  const int victim = cluster_.nnodes() - 1;
  const std::vector<int> survivors =
      surviving_granks(cluster_.nnodes(), cluster_.ranks_per_node(), victim);
  const std::vector<Mat> want_full = reference(nranks_ - 1, count);
  const std::vector<Mat> want_shrunk = reference_over(survivors, count);
  std::atomic<int> phase1_ok{0}, named{0}, shrunk_ok{0}, phase3_ok{0};

  cluster_.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    const std::vector<Mat> in = make_contrib(g, count);
    std::vector<Mat> out(count);

    // Phase 1: the full world still works. The victim's kill races with
    // the other nodes' unwind, so a survivor may already see the death
    // HERE (its node's exit gate reads the poison) — that is this rank's
    // detection point, and phase 2 would throw at entry anyway. The
    // victim's own ranks never throw in phase 1: the kill strictly
    // follows the victim leader's phase-1 unwind, and the fused gate
    // published its verdict before that.
    bool detected = false;
    try {
      comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                     mat_fn());
      if (out == want_full) phase1_ok.fetch_add(1);
    } catch (const mpi::NodeDeadError& e) {
      if (e.node() == victim) named.fetch_add(1);
      detected = true;
    }

    if (comm.node_of(g) == victim) {
      // The victim drops off the network; all its ranks unwind.
      if (comm.local_of(g) == 0) comm.fabric().kill_node(victim);
      return;
    }

    // Phase 2: survivors' next collective must fail and NAME the victim.
    if (!detected) {
      try {
        comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                       mat_fn());
        ADD_FAILURE() << "rank " << g << " completed against a dead node";
      } catch (const mpi::NodeDeadError& e) {
        if (e.node() == victim) named.fetch_add(1);
      }
    }

    // Recover: all survivor ranks run the collective shrink.
    const mpi::ShrinkReport rep = comm.shrink(ctx);
    bool ok = rep.dead_mask == (std::uint64_t{1} << victim);
    ok = ok && rep.epoch == 1 && static_cast<int>(rep.live.size()) ==
                                     cluster_.nnodes() - 1;
    for (int n : rep.live) ok = ok && n != victim;
    if (ok) shrunk_ok.fetch_add(1);

    // Phase 3: the shrunken world folds exactly over the survivors.
    comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
    if (out == want_shrunk) phase3_ok.fetch_add(1);
  });

  const int nsurvivors = static_cast<int>(survivors.size());
  // Every rank that completed phase 1 folded the full world; at minimum
  // the victim's ranks did (their unwind precedes the kill).
  EXPECT_GE(phase1_ok.load(), cluster_.ranks_per_node());
  EXPECT_LE(phase1_ok.load(), nranks_);
  // Every survivor saw the death named exactly once, in phase 1 or 2.
  EXPECT_EQ(named.load(), nsurvivors);
  EXPECT_EQ(shrunk_ok.load(), nsurvivors);
  EXPECT_EQ(phase3_ok.load(), nsurvivors);
  EXPECT_EQ(cluster_.comm().size(), nsurvivors);
  EXPECT_EQ(cluster_.comm().view_epoch(), 1u);
}

// ---- kill -> respawn -> readmit -> continue ----

TEST_P(RecoverParam, KillRespawnReadmitRestoresFullWorld) {
  const std::size_t count = 33;
  const int victim = cluster_.nnodes() - 1;
  const std::vector<int> survivors =
      surviving_granks(cluster_.nnodes(), cluster_.ranks_per_node(), victim);

  // Run 1: the victim dies, survivors shrink and keep working.
  std::atomic<int> recovered{0};
  cluster_.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    if (comm.node_of(g) == victim) {
      if (comm.local_of(g) == 0) comm.fabric().kill_node(victim);
      return;
    }
    const std::vector<Mat> in = make_contrib(g, count);
    std::vector<Mat> out(count);
    try {
      comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                     mat_fn());
    } catch (const mpi::NodeDeadError&) {
    }
    comm.shrink(ctx);
    comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
    if (out == reference_over(survivors, count)) recovered.fetch_add(1);
  });
  EXPECT_EQ(recovered.load(), static_cast<int>(survivors.size()));

  // Replacement node: between runs, respawn + readmit.
  cluster_.respawn(victim);
  EXPECT_EQ(static_cast<int>(cluster_.comm().live_nodes().size()),
            cluster_.nnodes());
  EXPECT_EQ(cluster_.comm().size(), nranks_);
  EXPECT_FALSE(cluster_.fabric().node_dead(victim));

  // Run 2: the full world again, exact full fold.
  const std::vector<Mat> want_full = reference(nranks_ - 1, count);
  std::atomic<int> full_ok{0};
  cluster_.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    const std::vector<Mat> in = make_contrib(g, count);
    std::vector<Mat> out(count);
    comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
    if (out == want_full) full_ok.fetch_add(1);
  });
  EXPECT_EQ(full_ok.load(), nranks_);
}

TEST(Recover, RespawnLaunchFailureIsCleanAndRetryable) {
  mpi::SimCluster cluster(copts({2, 1, mpi::ExecutorKind::thread}));
  // A live node cannot be "respawned".
  EXPECT_THROW(cluster.respawn(1), mpi::MpiError);

  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    if (comm.rank(ctx) == 1) {
      comm.fabric().kill_node(1);
      return;
    }
    try {
      comm.barrier(ctx);
    } catch (const mpi::NodeDeadError&) {
    }
    comm.shrink(ctx);
  });
  ASSERT_EQ(cluster.comm().live_nodes(), std::vector<int>({0}));

  // The replacement fails to launch ("cluster:respawn", operand = node):
  // the node must stay dead and the view untouched, and a later respawn
  // must still succeed.
  {
    fault::FaultInjector inj;
    inj.arm("cluster:respawn", /*nth=*/1, /*index=*/1);
    fault::ScopedFaultInjection scoped(inj);
    EXPECT_THROW(cluster.respawn(1), mpi::MpiError);
    EXPECT_EQ(inj.fired("cluster:respawn"), 1u);
  }
  EXPECT_TRUE(cluster.fabric().node_dead(1));
  EXPECT_EQ(cluster.comm().live_nodes(), std::vector<int>({0}));

  cluster.respawn(1);
  EXPECT_EQ(cluster.comm().live_nodes(), std::vector<int>({0, 1}));
  EXPECT_FALSE(cluster.fabric().node_dead(1));
}

// ---- the agreement under the schedule explorer ----

TEST(RecoverExplore, ShrinkAgreementSurvivesScheduleSweep) {
  // Three single-rank nodes; node 2 dies at a point the explorer chooses
  // (its kill races the survivors' collective and every "shrink:round"
  // sync point). Under EVERY schedule the survivors must converge on
  // live = {0, 1} and the shrunken allreduce must fold exactly.
  const std::size_t count = 3;
  check::ExploreOptions eo;
  eo.schedules = 40;
  eo.max_steps = 200000;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res =
      explorer.explore([&](hlsmpc::ult::Executor& ex) {
        mpi::SimCluster cluster(copts({3, 1, mpi::ExecutorKind::thread}));
        const std::vector<Mat> want = reference_over({0, 1}, count);
        cluster.run_on(ex, [&](mpi::ClusterComm& comm, TaskContext& ctx) {
          const int g = comm.rank(ctx);
          if (g == 2) {
            comm.fabric().kill_node(2);
            return;
          }
          const std::vector<Mat> in = make_contrib(g, count);
          std::vector<Mat> out(count);
          try {
            comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                           mat_fn());
            throw std::runtime_error("rank " + std::to_string(g) +
                                     " completed against the dead node");
          } catch (const mpi::NodeDeadError&) {
          }
          const mpi::ShrinkReport rep = comm.shrink(ctx);
          if (rep.live != std::vector<int>({0, 1})) {
            throw std::runtime_error("wrong survivor set");
          }
          comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                         mat_fn());
          if (out != want) {
            throw std::runtime_error(
                "rank " + std::to_string(g) +
                ": wrong shrunken fold under explored schedule");
          }
        });
      });
  EXPECT_TRUE(res.ok) << res.repro;
  EXPECT_GE(res.schedules_run, eo.schedules);
}

TEST(Recover, ObsCountsRecoveryEpisode) {
  obs::RecorderOptions ro;
  ro.ntasks = 4;
  obs::Recorder rec(ro);
  mpi::ClusterOptions o;
  o.nnodes = 2;
  o.ranks_per_node = 2;
  o.obs = &rec;
  mpi::SimCluster cluster(o);
  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    if (comm.node_of(g) == 1) {
      if (comm.local_of(g) == 0) comm.fabric().kill_node(1);
      return;
    }
    try {
      comm.barrier(ctx);
    } catch (const mpi::NodeDeadError&) {
    }
    comm.shrink(ctx);
  });
  const obs::Snapshot s = rec.snapshot();
  EXPECT_EQ(s.total.c[static_cast<int>(obs::Counter::recoveries)], 1u);
}

// ---- HLS checkpoint/restore ----

namespace {

std::uint8_t pattern(int instance, std::size_t i, int salt) {
  return static_cast<std::uint8_t>(instance * 97 + i * 31 + salt);
}

struct StateVars {
  hlsmpc::hls::VarHandle blob;     // node scope, 4 KiB
  hlsmpc::hls::VarHandle percore;  // core scope, 256 B per instance
};

StateVars register_state(hls::Runtime& rt) {
  hls::ModuleBuilder mb(rt.registry(), "state");
  auto blob =
      hls::add_array<std::uint8_t>(mb, "blob", 4096, topo::node_scope());
  auto percore =
      hls::add_array<std::uint8_t>(mb, "percore", 256, topo::core_scope());
  mb.commit();
  return {blob.handle(), percore.handle()};
}

/// Fill (or verify) every instance of `h` with pattern(instance, i, salt),
/// materializing lazily via get_addr like a task's first touch would.
void fill_all(hls::Runtime& rt, const hls::VarHandle& h, int salt) {
  const auto& st = rt.registry().scopes();
  const int sid = hls::scope_id(st, h.scope);
  for (int cpu = 0; cpu < st.num_cpus(); ++cpu) {
    const int inst = st.instance_of(sid, cpu);
    auto* p = static_cast<std::uint8_t*>(rt.storage().get_addr(h, cpu));
    for (std::size_t i = 0; i < h.size; ++i) p[i] = pattern(inst, i, salt);
  }
}

testing::AssertionResult all_match(hls::Runtime& rt, const hls::VarHandle& h,
                                   int salt) {
  const auto& st = rt.registry().scopes();
  const int sid = hls::scope_id(st, h.scope);
  for (int cpu = 0; cpu < st.num_cpus(); ++cpu) {
    const int inst = st.instance_of(sid, cpu);
    const auto* p =
        static_cast<const std::uint8_t*>(rt.storage().get_addr(h, cpu));
    for (std::size_t i = 0; i < h.size; ++i) {
      if (p[i] != pattern(inst, i, salt)) {
        return testing::AssertionFailure()
               << "instance " << inst << " byte " << i << ": "
               << static_cast<int>(p[i]) << " != expected "
               << static_cast<int>(pattern(inst, i, salt));
      }
    }
  }
  return testing::AssertionSuccess();
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  // Stale version files from an earlier run would satisfy restore().
  std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

}  // namespace

TEST(Checkpoint, RoundTripIsBitIdentical) {
  const std::string dir = fresh_dir("hls_ckpt_roundtrip");
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::CheckpointStore store({dir});

  {
    hls::Runtime rt(m, 1);
    const StateVars v = register_state(rt);
    fill_all(rt, v.blob, /*salt=*/5);
    fill_all(rt, v.percore, /*salt=*/9);
    EXPECT_EQ(rt.checkpoint(store, topo::node_scope()), 1u);
    EXPECT_EQ(rt.checkpoint(store, topo::core_scope()), 1u);
  }

  // A fresh runtime (the respawned process) with the same registration
  // restores every instance bit-identically — including regions it never
  // touched, which restore first-touches itself.
  hls::Runtime rt2(m, 1);
  const StateVars v2 = register_state(rt2);
  EXPECT_EQ(rt2.restore(store, topo::node_scope()), 1u);
  EXPECT_EQ(rt2.restore(store, topo::core_scope()), 1u);
  EXPECT_TRUE(all_match(rt2, v2.blob, 5));
  EXPECT_TRUE(all_match(rt2, v2.percore, 9));

  const auto node_scope_c =
      hls::canonicalize(rt2.scope_map(), topo::node_scope());
  EXPECT_EQ(store.versions(node_scope_c),
            std::vector<std::uint64_t>({1}));
}

TEST(Checkpoint, TornWriteFallsBackToPreviousVersion) {
  const std::string dir = fresh_dir("hls_ckpt_torn");
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::CheckpointStore store({dir});
  hls::Runtime rt(m, 1);
  const StateVars v = register_state(rt);

  fill_all(rt, v.blob, /*salt=*/1);
  ASSERT_EQ(rt.checkpoint(store, topo::node_scope()), 1u);

  // Version 2 is torn mid-payload (crash model: published, no CRC).
  fill_all(rt, v.blob, /*salt=*/2);
  {
    fault::FaultInjector inj;
    inj.arm("ckpt:write");
    fault::ScopedFaultInjection scoped(inj);
    EXPECT_EQ(rt.checkpoint(store, topo::node_scope()), 2u);
    EXPECT_EQ(inj.fired("ckpt:write"), 1u);
  }
  const auto scope_c = hls::canonicalize(rt.scope_map(), topo::node_scope());
  EXPECT_EQ(store.versions(scope_c), std::vector<std::uint64_t>({1, 2}));

  // Restore must reject the torn newest and fall back — overwriting the
  // live (mutated-again) state with version 1's payload.
  fill_all(rt, v.blob, /*salt=*/3);
  EXPECT_EQ(rt.restore(store, topo::node_scope()), 1u);
  EXPECT_TRUE(all_match(rt, v.blob, 1));
}

TEST(Checkpoint, EmptyStoreRestoreThrows) {
  const std::string dir = fresh_dir("hls_ckpt_empty");
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::CheckpointStore store({dir});
  hls::Runtime rt(m, 1);
  register_state(rt);
  EXPECT_THROW(rt.restore(store, topo::node_scope()), hls::HlsError);
}

TEST(Checkpoint, PrunesBeyondKeep) {
  const std::string dir = fresh_dir("hls_ckpt_prune");
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::CheckpointStore store({dir});  // keep = 2 (the default)
  hls::Runtime rt(m, 1);
  const StateVars v = register_state(rt);
  for (int salt = 1; salt <= 3; ++salt) {
    fill_all(rt, v.blob, salt);
    rt.checkpoint(store, topo::node_scope());
  }
  const auto scope_c = hls::canonicalize(rt.scope_map(), topo::node_scope());
  EXPECT_EQ(store.versions(scope_c), std::vector<std::uint64_t>({2, 3}));
  EXPECT_EQ(rt.restore(store, topo::node_scope()), 3u);
  EXPECT_TRUE(all_match(rt, v.blob, 3));
}

// ---- the acceptance composition: warm restart of a respawned node ----

TEST(Recover, WarmRestartRespawnRestoresCheckpointBitIdentical) {
  const std::string dir = fresh_dir("hls_ckpt_warm_restart");
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  constexpr int kVictim = 1;
  const std::size_t count = 17;

  // The victim node's HLS runtime checkpoints its committed scope data
  // before the crash (in a deployment: periodically, between episodes).
  {
    hls::Runtime rt(m, 1);
    const StateVars v = register_state(rt);
    fill_all(rt, v.blob, /*salt=*/7);
    hls::CheckpointStore store({dir});
    ASSERT_EQ(rt.checkpoint(store, topo::node_scope()), 1u);
  }

  // The node dies mid-job; survivors shrink and continue.
  mpi::SimCluster cluster(copts({2, 2, mpi::ExecutorKind::thread}));
  const std::vector<int> survivors = surviving_granks(2, 2, kVictim);
  std::atomic<int> recovered{0};
  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    const std::vector<Mat> in = make_contrib(g, count);
    std::vector<Mat> out(count);
    if (comm.node_of(g) == kVictim) {
      if (comm.local_of(g) == 0) comm.fabric().kill_node(kVictim);
      return;
    }
    try {
      comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                     mat_fn());
    } catch (const mpi::NodeDeadError&) {
    }
    comm.shrink(ctx);
    comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
    if (out == reference_over(survivors, count)) recovered.fetch_add(1);
  });
  ASSERT_EQ(recovered.load(), static_cast<int>(survivors.size()));

  // Warm restart: the replacement process restores the checkpoint into a
  // FRESH runtime and must read back the committed bytes bit-identically.
  {
    hls::Runtime replacement(m, 1);
    const StateVars v = register_state(replacement);
    hls::CheckpointStore store({dir});
    EXPECT_EQ(replacement.restore(store, topo::node_scope()), 1u);
    EXPECT_TRUE(all_match(replacement, v.blob, 7));
  }

  // ... and the respawned node rejoins the communicator: the full world
  // folds exactly again.
  cluster.respawn(kVictim);
  const std::vector<Mat> want_full = reference(cluster.nranks() - 1, count);
  std::atomic<int> full_ok{0};
  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    const std::vector<Mat> in = make_contrib(g, count);
    std::vector<Mat> out(count);
    comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
    if (out == want_full) full_ok.fetch_add(1);
  });
  EXPECT_EQ(full_ok.load(), cluster.nranks());
}
