#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "check/hls_checker.hpp"
#include "hls/hls.hpp"
#include "ult/scheduler.hpp"

namespace hls = hlsmpc::hls;
namespace topo = hlsmpc::topo;
namespace ult = hlsmpc::ult;

namespace {

/// Run `n` tasks pinned to cpus 0..n-1 on the given machine.
void run_tasks(hls::Runtime& rt, int n, ult::Executor& ex,
               const std::function<void(hls::TaskView&)>& body) {
  std::vector<int> pins(static_cast<std::size_t>(n));
  std::iota(pins.begin(), pins.end(), 0);
  ex.run(n, pins, [&](ult::TaskContext& ctx) {
    hls::TaskView view(rt, ctx);
    body(view);
  });
}

}  // namespace

// ---------- registry ----------

TEST(HlsRegistry, OffsetsRespectAlignment) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 4);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto a = hls::add_var<char>(mb, "a", topo::node_scope());
  auto b = hls::add_var<double>(mb, "b", topo::node_scope());
  auto c = hls::add_var<char>(mb, "c", topo::node_scope());
  auto d = hls::add_var<int>(mb, "d", topo::node_scope());
  mb.commit();
  EXPECT_EQ(a.handle().offset, 0u);
  EXPECT_EQ(b.handle().offset, 8u);  // aligned up from 1
  EXPECT_EQ(c.handle().offset, 16u);
  EXPECT_EQ(d.handle().offset, 20u);  // aligned up from 17
}

TEST(HlsRegistry, PerScopeRegionsAreIndependent) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 4);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto a = hls::add_var<double>(mb, "a", topo::node_scope());
  auto b = hls::add_var<double>(mb, "b", topo::numa_scope());
  mb.commit();
  // Different scopes each start their own region at offset 0.
  EXPECT_EQ(a.handle().offset, 0u);
  EXPECT_EQ(b.handle().offset, 0u);
  EXPECT_NE(a.handle().scope, b.handle().scope);
}

TEST(HlsRegistry, CacheScopeLevelResolvesToLlc) {
  topo::Machine m = topo::Machine::nehalem_ex(2);  // llc = L3
  hls::Runtime rt(m, 4);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::cache_scope(0));
  mb.commit();
  EXPECT_EQ(v.handle().scope.kind, topo::ScopeKind::cache);
  EXPECT_EQ(v.handle().scope.cache_level, 3);
}

TEST(HlsRegistry, MisuseIsRejected) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 2);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  hls::add_var<int>(mb, "x", topo::node_scope());
  EXPECT_THROW(hls::add_var<int>(mb, "x", topo::node_scope()), hls::HlsError);
  EXPECT_THROW(mb.add_raw("z", topo::node_scope(), 0, 8, {}), hls::HlsError);
  EXPECT_THROW(mb.add_raw("w", topo::node_scope(), 8, 3, {}), hls::HlsError);
  mb.commit();
  // "variable must not have been accessed yet": no declarations after the
  // module is live.
  EXPECT_THROW(hls::add_var<int>(mb, "y", topo::node_scope()), hls::HlsError);
  EXPECT_THROW(mb.commit(), hls::HlsError);
}

TEST(HlsRegistry, UseBeforeCommitThrows) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 2);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  ult::ThreadExecutor ex;
  EXPECT_THROW(
      run_tasks(rt, 1, ex, [&](hls::TaskView& view) { view.get(v); }),
      hls::HlsError);
}

// ---------- storage & sharing ----------

TEST(HlsStorage, NodeScopeSharesOneCopy) {
  topo::Machine m = topo::Machine::nehalem_ex(4);
  hls::Runtime rt(m, 8);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope(), 41);
  mb.commit();
  std::mutex mu;
  std::set<void*> addrs;
  ult::ThreadExecutor ex;
  run_tasks(rt, 8, ex, [&](hls::TaskView& view) {
    int& x = view.get(v);
    EXPECT_EQ(x, 41);  // initializer ran
    std::lock_guard<std::mutex> lk(mu);
    addrs.insert(&x);
  });
  EXPECT_EQ(addrs.size(), 1u);
  EXPECT_EQ(rt.storage().copies(v.handle().scope, v.handle().module), 1);
}

TEST(HlsStorage, NumaScopeOneCopyPerNuma) {
  topo::Machine m = topo::Machine::nehalem_ex(4);  // 8 cpus per numa
  hls::Runtime rt(m, 32);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<double>(mb, "v", topo::numa_scope(), 2.5);
  mb.commit();
  std::mutex mu;
  std::map<int, std::set<void*>> addrs_by_numa;
  ult::ThreadExecutor ex;
  run_tasks(rt, 32, ex, [&](hls::TaskView& view) {
    double& x = view.get(v);
    EXPECT_EQ(x, 2.5);
    std::lock_guard<std::mutex> lk(mu);
    addrs_by_numa[m.numa_of_cpu(view.cpu())].insert(&x);
  });
  EXPECT_EQ(addrs_by_numa.size(), 4u);
  std::set<void*> all;
  for (const auto& [numa, addrs] : addrs_by_numa) {
    EXPECT_EQ(addrs.size(), 1u) << "numa " << numa;
    all.insert(addrs.begin(), addrs.end());
  }
  EXPECT_EQ(all.size(), 4u);  // distinct across numa nodes
  EXPECT_EQ(rt.storage().copies(v.handle().scope, v.handle().module), 4);
}

TEST(HlsStorage, CoreScopePrivatePerCore) {
  topo::Machine m = topo::Machine::generic(1, 4, 1 << 20, /*smt=*/2);
  hls::Runtime rt(m, 8);  // 8 hw threads on 4 cores
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::core_scope());
  mb.commit();
  std::mutex mu;
  std::map<int, std::set<void*>> by_core;
  ult::ThreadExecutor ex;
  run_tasks(rt, 8, ex, [&](hls::TaskView& view) {
    int& x = view.get(v);
    std::lock_guard<std::mutex> lk(mu);
    by_core[m.core_of_cpu(view.cpu())].insert(&x);
  });
  // Hyperthreads of a core share; different cores do not (paper §II.B.1).
  EXPECT_EQ(by_core.size(), 4u);
  for (const auto& [core, addrs] : by_core) EXPECT_EQ(addrs.size(), 1u);
  EXPECT_EQ(rt.storage().copies(v.handle().scope, v.handle().module), 4);
}

TEST(HlsStorage, WritesVisibleWithinScopeInstance) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 16);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_array<long>(mb, "arr", 16, topo::numa_scope());
  mb.commit();
  std::atomic<int> bad{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 16, ex, [&](hls::TaskView& view) {
    long* arr = view.get(v);
    const int numa = m.numa_of_cpu(view.cpu());
    view.single({v.handle()}, [&] { arr[0] = 1000 + numa; });
    // After the single, every member of the instance sees the write.
    if (arr[0] != 1000 + numa) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(HlsStorage, MemoryAccountingMatchesCopyCount) {
  topo::Machine m = topo::Machine::nehalem_ex(4);
  hlsmpc::memtrack::Tracker tracker;
  hls::Runtime rt(m, 32, &tracker);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  constexpr std::size_t kN = 1 << 12;
  auto node_table = hls::add_array<double>(mb, "node_table", kN,
                                           topo::node_scope());
  auto numa_table = hls::add_array<double>(mb, "numa_table", kN,
                                           topo::numa_scope());
  mb.commit();
  ult::ThreadExecutor ex;
  run_tasks(rt, 32, ex, [&](hls::TaskView& view) {
    view.get(node_table);
    view.get(numa_table);
  });
  // 1 node copy + 4 numa copies of kN doubles each.
  EXPECT_EQ(tracker.current(hlsmpc::memtrack::Category::hls_shared),
            (1 + 4) * kN * sizeof(double));
}

TEST(HlsStorage, LazyAllocationOnlyTouchedInstances) {
  topo::Machine m = topo::Machine::nehalem_ex(4);
  hls::Runtime rt(m, 4);  // tasks only on cpus 0..3 => numa 0 only
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::numa_scope());
  mb.commit();
  ult::ThreadExecutor ex;
  run_tasks(rt, 4, ex, [&](hls::TaskView& view) { view.get(v); });
  EXPECT_EQ(rt.storage().copies(v.handle().scope, v.handle().module), 1);
}

TEST(HlsStorage, InitializerRunsOncePerInstance) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 16);
  static std::atomic<int> init_runs{0};
  init_runs = 0;
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_array<int>(mb, "v", 8, topo::numa_scope(),
                               [](int* p, std::size_t n) {
                                 ++init_runs;
                                 for (std::size_t i = 0; i < n; ++i) {
                                   p[i] = static_cast<int>(i);
                                 }
                               });
  mb.commit();
  ult::ThreadExecutor ex;
  run_tasks(rt, 16, ex, [&](hls::TaskView& view) {
    int* p = view.get(v);
    EXPECT_EQ(p[7], 7);
    for (int i = 0; i < 100; ++i) view.get(v);  // repeated access
  });
  EXPECT_EQ(init_runs.load(), 2);  // one per touched numa instance
}

// ---------- synchronization ----------

namespace {

struct SyncParam {
  topo::ScopeSpec scope;
  bool fiber;
};

std::string sync_param_name(const testing::TestParamInfo<SyncParam>& info) {
  std::string s = topo::to_string(info.param.scope);
  for (char& c : s) {
    if (c == '(' || c == ')') c = '_';
  }
  return s + (info.param.fiber ? "_fiber" : "_thread");
}

class HlsSyncParam : public testing::TestWithParam<SyncParam> {
 protected:
  std::unique_ptr<ult::Executor> make_executor() {
    if (GetParam().fiber) return std::make_unique<ult::FiberExecutor>(2);
    return std::make_unique<ult::ThreadExecutor>();
  }
};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Scopes, HlsSyncParam,
    testing::Values(SyncParam{topo::node_scope(), false},
                    SyncParam{topo::numa_scope(), false},
                    SyncParam{topo::cache_scope(0), false},
                    SyncParam{topo::core_scope(), false},
                    SyncParam{topo::node_scope(), true},
                    SyncParam{topo::numa_scope(), true}),
    sync_param_name);

TEST_P(HlsSyncParam, SingleExecutesExactlyOncePerInstance) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  const int ntasks = 16;
  hls::Runtime rt(m, ntasks);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", GetParam().scope);
  mb.commit();
  const hls::CanonicalScope canon = v.handle().scope;
  const int ninstances =
      rt.scope_map().num_instances(GetParam().scope) *
          0 +  // instances touched = those with tasks; all are (16 tasks on 16 cpus)
      std::min(rt.scope_map().num_instances(GetParam().scope), ntasks);
  std::atomic<int> executions{0};
  std::atomic<int> bad{0};
  auto ex = make_executor();
  run_tasks(rt, ntasks, *ex, [&](hls::TaskView& view) {
    int& x = view.get(v);
    view.single({v.handle()}, [&] {
      ++executions;
      x = 7;
    });
    if (x != 7) ++bad;  // single's implicit barrier makes the write visible
  });
  EXPECT_EQ(executions.load(), ninstances);
  EXPECT_EQ(bad.load(), 0);
  (void)canon;
}

TEST_P(HlsSyncParam, BarrierSeparatesPhases) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  const int ntasks = 16;
  hls::Runtime rt(m, ntasks);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_array<int>(mb, "v", 16, GetParam().scope);
  mb.commit();
  topo::ScopeMap sm(m);
  const int per_instance = sm.cpus_per_instance(GetParam().scope);
  std::atomic<int> bad{0};
  auto ex = make_executor();
  run_tasks(rt, ntasks, *ex, [&](hls::TaskView& view) {
    int* arr = view.get(v);
    const int slot = view.cpu() % per_instance;
    for (int phase = 0; phase < 5; ++phase) {
      arr[slot] = phase;
      view.barrier({v.handle()});
      // All instance members must have written this phase.
      const int members = std::min(per_instance, 16);
      for (int i = 0; i < members; ++i) {
        if (arr[i] != phase) ++bad;
      }
      view.barrier({v.handle()});
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(HlsSyncParam, SingleNowaitFirstTaskRuns) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  const int ntasks = 16;
  hls::Runtime rt(m, ntasks);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", GetParam().scope);
  mb.commit();
  const int ninstances =
      std::min(rt.scope_map().num_instances(GetParam().scope), ntasks);
  std::atomic<int> executions{0};
  auto ex = make_executor();
  run_tasks(rt, ntasks, *ex, [&](hls::TaskView& view) {
    for (int site = 0; site < 3; ++site) {
      view.single_nowait({v.handle()}, [&] { ++executions; });
    }
  });
  EXPECT_EQ(executions.load(), 3 * ninstances);
}

TEST(HlsSync, HierarchicalAndFlatBarriersAgree) {
  topo::Machine m = topo::Machine::nehalem_ex(4);
  for (bool flat : {false, true}) {
    hls::Runtime rt(m, 32);
    rt.sync().force_flat(flat);
    EXPECT_EQ(rt.sync().uses_hierarchy(hls::CanonicalScope{
                  topo::ScopeKind::node, 0}),
              !flat);
    hls::ModuleBuilder mb(rt.registry(), "mod");
    auto v = hls::add_var<long>(mb, "v", topo::node_scope());
    mb.commit();
    std::atomic<long> sum{0};
    std::atomic<int> bad{0};
    ult::ThreadExecutor ex;
    run_tasks(rt, 32, ex, [&](hls::TaskView& view) {
      for (int round = 0; round < 3; ++round) {
        sum.fetch_add(1);
        view.barrier({v.handle()});
        if (sum.load() < 32 * (round + 1)) ++bad;
        view.barrier({v.handle()});
      }
    });
    EXPECT_EQ(bad.load(), 0) << (flat ? "flat" : "hierarchical");
  }
}

TEST(HlsSync, SingleLastArriverExecutes) {
  // The paper implements single as a modified barrier in which the LAST
  // entering task executes the block. Stagger arrivals and check that the
  // executor is the straggler.
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 4);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  mb.commit();
  std::atomic<int> arrivals{0};
  std::atomic<bool> task3_ran{false};
  ult::ThreadExecutor ex;
  run_tasks(rt, 4, ex, [&](hls::TaskView& view) {
    view.get(v);
    const int me = view.context().task_id();
    if (me == 3) {
      // Stagger: enter only after the other three are (about to be)
      // parked inside the single's barrier.
      while (arrivals.load() < 3) view.context().yield();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    } else {
      arrivals.fetch_add(1);
    }
    view.single({v.handle()}, [&] { task3_ran = (me == 3); });
  });
  EXPECT_TRUE(task3_ran.load());
}

TEST(HlsSync, MixedScopeSingleRejected) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 2);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto a = hls::add_var<int>(mb, "a", topo::node_scope());
  auto b = hls::add_var<int>(mb, "b", topo::numa_scope());
  mb.commit();
  std::atomic<int> threw{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
    try {
      view.single({a.handle(), b.handle()}, [] {});
    } catch (const hls::HlsError&) {
      ++threw;
    }
  });
  EXPECT_EQ(threw.load(), 2);
}

TEST(HlsSync, BarrierListUsesWidestScope) {
  // barrier(a: numa, b: node) must synchronize the whole node (§II.B.2).
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 16);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto a = hls::add_var<int>(mb, "a", topo::numa_scope());
  auto b = hls::add_var<int>(mb, "b", topo::node_scope());
  mb.commit();
  EXPECT_EQ(rt.widest_scope({a.handle(), b.handle()}).kind,
            topo::ScopeKind::node);
  std::atomic<int> count{0};
  std::atomic<int> bad{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 16, ex, [&](hls::TaskView& view) {
    count.fetch_add(1);
    view.barrier({a.handle(), b.handle()});
    if (count.load() != 16) ++bad;  // node-wide rendezvous
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(HlsSync, EmptyListsRejected) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 1);
  ult::ThreadExecutor ex;
  std::atomic<int> threw{0};
  run_tasks(rt, 1, ex, [&](hls::TaskView& view) {
    try {
      view.barrier({});
    } catch (const hls::HlsError&) {
      ++threw;
    }
    try {
      view.single({}, [] {});
    } catch (const hls::HlsError&) {
      ++threw;
    }
  });
  EXPECT_EQ(threw.load(), 2);
}

TEST(HlsStorage, MultipleModulesCoexist) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 8);
  hls::ModuleBuilder physics(rt.registry(), "physics");
  auto eos = hls::add_array<double>(physics, "eos", 128, topo::node_scope());
  physics.commit();
  hls::ModuleBuilder solver(rt.registry(), "solver");
  auto cfg = hls::add_var<int>(solver, "cfg", topo::node_scope(), 5);
  auto cache_tab =
      hls::add_array<float>(solver, "tab", 64, topo::numa_scope());
  solver.commit();

  std::atomic<int> bad{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 8, ex, [&](hls::TaskView& view) {
    double* e = view.get(eos);
    int& c = view.get(cfg);
    float* t = view.get(cache_tab);
    if (c != 5) ++bad;
    view.single({eos.handle()}, [&] { e[0] = 1.5; });
    view.single({cache_tab.handle()}, [&] { t[0] = 2.5f; });
    if (e[0] != 1.5 || t[0] != 2.5f) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(rt.registry().num_modules(), 2);
}

TEST(HlsStorage, ConcurrentFirstTouchIsSafe) {
  // Many tasks race to be the first accessor of many modules; each module
  // region must be allocated and initialized exactly once.
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 16);
  constexpr int kModules = 12;
  static std::atomic<int> inits{0};
  inits = 0;
  std::vector<hls::ArrayVar<long>> vars;
  for (int i = 0; i < kModules; ++i) {
    hls::ModuleBuilder mb(rt.registry(), "mod" + std::to_string(i));
    vars.push_back(hls::add_array<long>(
        mb, "v", 256, topo::node_scope(), [](long* p, std::size_t n) {
          ++inits;
          for (std::size_t j = 0; j < n; ++j) p[j] = static_cast<long>(j);
        }));
    mb.commit();
  }
  std::atomic<int> bad{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 16, ex, [&](hls::TaskView& view) {
    for (int round = 0; round < 3; ++round) {
      for (auto& v : vars) {
        long* p = view.get(v);
        if (p[255] != 255) ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(inits.load(), kModules);  // once per module (node scope => 1 inst)
}

TEST(HlsStorage, ConcurrentFirstTouchInitializesOnce) {
  // N tasks race the lazy first touch of ONE module region on the SAME
  // scope instance. The double-checked atomic publish must elect exactly
  // one initializer, and every racer must observe the same fully
  // initialized region (ledger-checked per task).
  topo::Machine m = topo::Machine::nehalem_ex(2);
  const int ntasks = 16;
  hls::Runtime rt(m, ntasks);
  static std::atomic<int> inits{0};
  inits = 0;
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_array<long>(mb, "v", 512, topo::node_scope(),
                                [](long* p, std::size_t n) {
                                  ++inits;
                                  for (std::size_t i = 0; i < n; ++i) {
                                    p[i] = static_cast<long>(i) * 3;
                                  }
                                });
  mb.commit();
  std::vector<void*> ledger(static_cast<std::size_t>(ntasks), nullptr);
  std::atomic<int> bad{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, ntasks, ex, [&](hls::TaskView& view) {
    long* p = view.get(v);  // all tasks race the first touch
    ledger[static_cast<std::size_t>(view.context().task_id())] = p;
    // A non-winning racer must never see a partially initialized region.
    if (p[0] != 0 || p[511] != 511 * 3) ++bad;
  });
  EXPECT_EQ(inits.load(), 1);  // node scope: one instance, one init
  EXPECT_EQ(bad.load(), 0);
  for (int t = 1; t < ntasks; ++t) {
    EXPECT_EQ(ledger[static_cast<std::size_t>(t)], ledger[0]) << "task " << t;
  }
  EXPECT_EQ(rt.storage().copies(v.handle().scope, v.handle().module), 1);
}

TEST(HlsStorage, TrailingOverrunRejected) {
  // The range check must catch [offset, offset + size) running past the
  // region end, not just a bad start offset: an in-bounds offset with a
  // size crossing the boundary used to pass silently.
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 1);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_array<int>(mb, "v", 4, topo::node_scope());  // 16 bytes
  mb.commit();
  const hls::VarHandle h = v.handle();
  auto& st = rt.storage();
  // Whole region and suffixes are fine.
  EXPECT_NE(st.get_addr(h.scope, h.module, 0, 16, 0), nullptr);
  EXPECT_NE(st.get_addr(h.scope, h.module, 12, 4, 0), nullptr);
  EXPECT_NE(st.get_addr(h.scope, h.module, 16, 0, 0), nullptr);  // empty tail
  // Start offset past the end: caught before and now.
  EXPECT_THROW(st.get_addr(h.scope, h.module, 17, 0, 0), hls::HlsError);
  // Trailing overrun: starts in bounds, runs past the end.
  EXPECT_THROW(st.get_addr(h.scope, h.module, 12, 8, 0), hls::HlsError);
  EXPECT_THROW(st.get_addr(h.scope, h.module, 0, 17, 0), hls::HlsError);
  // Offset + size overflow must not wrap around to "in bounds".
  EXPECT_THROW(st.get_addr(h.scope, h.module, 8,
                           std::numeric_limits<std::size_t>::max() - 4, 0),
               hls::HlsError);
  // The same check guards the cached Runtime::get_addr path.
  ult::ThreadExecutor ex;
  std::atomic<int> threw{0};
  run_tasks(rt, 1, ex, [&](hls::TaskView& view) {
    view.get(v);  // warm the per-task cache
    hls::VarHandle bad = h;
    bad.offset = 12;
    bad.size = 8;
    try {
      view.runtime().get_addr(bad, view.context());
    } catch (const hls::HlsError&) {
      ++threw;
    }
  });
  EXPECT_EQ(threw.load(), 1);
}

TEST(HlsMigration, AddrCacheInvalidatedOnMigration) {
  // MPC_Move must drop the task's resolved-address cache: after a legal
  // move to another numa instance the same handle resolves to that
  // instance's copy, and moving back returns the original address.
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 1);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::numa_scope(), 9);
  mb.commit();
  ult::ThreadExecutor ex;
  std::atomic<int> bad{0};
  run_tasks(rt, 1, ex, [&](hls::TaskView& view) {
    int* on_numa0 = &view.get(v);
    if (&view.get(v) != on_numa0) ++bad;  // warm hit is stable
    view.migrate(8);                      // numa 0 -> numa 1
    int* on_numa1 = &view.get(v);
    if (on_numa1 == on_numa0) ++bad;  // stale cached pointer => shared copy
    if (*on_numa1 != 9) ++bad;        // fresh copy was initialized
    view.migrate(0);
    if (&view.get(v) != on_numa0) ++bad;  // back to the first instance
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(rt.storage().copies(v.handle().scope, v.handle().module), 2);
}

TEST(HlsSync, SingleNowaitSitesAreIndependentPerScope) {
  // nowait counters are per scope: sites on different scopes do not
  // interfere.
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 16);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto a = hls::add_var<int>(mb, "a", topo::node_scope());
  auto b = hls::add_var<int>(mb, "b", topo::numa_scope());
  mb.commit();
  std::atomic<int> node_runs{0}, numa_runs{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 16, ex, [&](hls::TaskView& view) {
    view.single_nowait({a.handle()}, [&] { ++node_runs; });
    view.single_nowait({b.handle()}, [&] { ++numa_runs; });
    view.single_nowait({a.handle()}, [&] { ++node_runs; });
  });
  EXPECT_EQ(node_runs.load(), 2);  // two node sites
  EXPECT_EQ(numa_runs.load(), 2);  // one site x two numa instances
}

TEST(HlsSync, ListingTwoBarrierNowaitPattern) {
  // Listing 2 of the paper: explicit barriers around two nowait singles
  // halves the synchronizations of listing 1 while staying correct.
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 16);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto a = hls::add_var<int>(mb, "a", topo::node_scope());
  auto b = hls::add_var<int>(mb, "b", topo::numa_scope());
  mb.commit();
  std::atomic<int> bad{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 16, ex, [&](hls::TaskView& view) {
    int& av = view.get(a);
    int& bv = view.get(b);
    view.barrier({a.handle(), b.handle()});
    view.single_nowait({a.handle()}, [&] { av = 4; });
    view.single_nowait({b.handle()}, [&] { bv = 2; });
    view.barrier({a.handle(), b.handle()});
    // After the closing barrier both writes are visible everywhere.
    if (av != 4 || bv != 2) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

// ---------- migration ----------

TEST(HlsMigration, AlignedCountersAllowMove) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 2);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::numa_scope(), 5);
  mb.commit();
  std::atomic<int> bad{0};
  ult::ThreadExecutor ex;
  // Tasks on cpus 0 and 1 (both numa 0); task 0 moves to numa 1.
  run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
    int* before = &view.get(v);
    if (view.context().task_id() == 0) {
      view.migrate(8);  // cpu 8 = numa 1
      int* after = &view.get(v);
      if (after == before) ++bad;  // must now see numa 1's copy
      if (*after != 5) ++bad;      // fresh copy initialized
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(HlsMigration, MismatchedCountersRejectMove) {
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 8);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::numa_scope());
  mb.commit();
  std::atomic<int> threw{0};
  ult::ThreadExecutor ex;
  // All 8 tasks on numa 0 (cpus 0..7). They perform a numa-scope barrier;
  // numa 1's instance has seen none, so migration there must be refused.
  run_tasks(rt, 8, ex, [&](hls::TaskView& view) {
    view.get(v);
    view.barrier({v.handle()});
    if (view.context().task_id() == 0) {
      try {
        view.migrate(8);
      } catch (const hls::HlsError&) {
        ++threw;
      }
    }
  });
  EXPECT_EQ(threw.load(), 1);
}

TEST(HlsMigration, MismatchedNowaitCountersRejectMove) {
  // Nowait sites count toward the §IV.A episode totals: a task that passed
  // a numa-scope nowait site cannot move to a numa instance that has not.
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 2);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::numa_scope());
  mb.commit();
  std::atomic<int> threw{0};
  ult::ThreadExecutor ex;
  // Both tasks on numa 0 (cpus 0, 1) pass one nowait site, so their numa
  // counters read 1; numa 1's instance still reads 0.
  run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
    view.get(v);
    view.single_nowait({v.handle()}, [] {});
    view.barrier({v.handle()});
    if (view.context().task_id() == 0) {
      try {
        view.migrate(8);  // cpu 8 = numa 1
      } catch (const hls::HlsError& e) {
        ++threw;
        EXPECT_NE(std::string(e.what()).find("episodes"), std::string::npos);
      }
    }
  });
  EXPECT_EQ(threw.load(), 1);
}

TEST(HlsMigration, MigrateMidSingleThrows) {
  // The elected executor owns the instance's exclusivity and its counters
  // are mid-update: MPC_Move from inside the block must be refused even
  // when the counters would otherwise match.
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 4);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  mb.commit();
  std::atomic<int> threw{0};
  std::atomic<int> bad{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 4, ex, [&](hls::TaskView& view) {
    view.get(v);
    view.single({v.handle()}, [&] {
      try {
        view.migrate(5);  // same node: counters match, still illegal here
        ++bad;
      } catch (const hls::HlsError& e) {
        ++threw;
        EXPECT_NE(std::string(e.what()).find("single"), std::string::npos);
      }
    });
    // The refused move must leave the single usable: everyone gets here.
    view.barrier({v.handle()});
  });
  EXPECT_EQ(threw.load(), 1);  // exactly one executor tried
  EXPECT_EQ(bad.load(), 0);
}

TEST(HlsMigration, MigrateThenBarrierRecountsParticipants) {
  // After a legal move the barrier arrival counts must follow the new
  // pinning: numa 0 now expects 3 arrivals, numa 1 exactly 1 — with stale
  // counts either side would hang (guarded by the ctest timeout).
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 4);
  hlsmpc::check::HlsChecker checker(rt.scope_map(), 4);
  rt.sync().set_observer(&checker);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto nv = hls::add_var<int>(mb, "nv", topo::node_scope());
  auto v = hls::add_var<int>(mb, "v", topo::numa_scope());
  mb.commit();
  std::atomic<int> threw{0};
  ult::ThreadExecutor ex;
  // All 4 tasks start on numa 0 (cpus 0..3); task 0 moves to numa 1.
  run_tasks(rt, 4, ex, [&](hls::TaskView& view) {
    view.get(v);
    view.barrier({nv.handle()});
    if (view.context().task_id() == 0) {
      try {
        view.migrate(8);  // counters all aligned: must be accepted
      } catch (const hls::HlsError&) {
        ++threw;
      }
    }
    view.barrier({nv.handle()});  // publish the new pinning to everyone
    view.barrier({v.handle()});   // numa barrier under the new layout
  });
  rt.sync().set_observer(nullptr);
  EXPECT_EQ(threw.load(), 0);
  const hls::CanonicalScope numa{topo::ScopeKind::numa, 0};
  const hls::CanonicalScope node{topo::ScopeKind::node, 0};
  EXPECT_EQ(rt.sync().participants(numa, 0), 3);
  EXPECT_EQ(rt.sync().participants(numa, 8), 1);
  // Both numa instances completed exactly one episode each.
  EXPECT_EQ(rt.sync().instance_sync_count(numa, 0), 1u);
  EXPECT_EQ(rt.sync().instance_sync_count(numa, 8), 1u);
  EXPECT_EQ(rt.sync().instance_sync_count(node, 0), 2u);
  EXPECT_TRUE(checker.verify()) << checker.report();
}

TEST(HlsMigration, BadCpuRejected) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 1);
  ult::ThreadExecutor ex;
  std::atomic<int> threw{0};
  run_tasks(rt, 1, ex, [&](hls::TaskView& view) {
    try {
      view.migrate(99);
    } catch (const hls::HlsError&) {
      ++threw;
    }
  });
  EXPECT_EQ(threw.load(), 1);
}

TEST(HlsStorage, NumaLevelTwoSharesPerSocket) {
  // The numa scope's level clause (§II.B.1): on a machine with two NUMA
  // domains per socket, numa = 4 copies, numa level(2) = 2 copies.
  topo::MachineDesc d;
  d.name = "numa-heavy";
  d.sockets = 2;
  d.numa_per_socket = 2;
  d.cores_per_numa = 2;
  d.caches = {
      {.level = 1, .size_bytes = 32 << 10, .line_bytes = 64,
       .associativity = 8, .cpus_per_instance = 1, .latency_cycles = 4},
      {.level = 2, .size_bytes = 1 << 20, .line_bytes = 64,
       .associativity = 16, .cpus_per_instance = 4, .latency_cycles = 30},
  };
  const topo::Machine m{d};
  hls::Runtime rt(m, 8);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto per_domain = hls::add_var<int>(mb, "d", topo::numa_scope());
  auto per_socket =
      hls::add_var<int>(mb, "s", topo::ScopeSpec{topo::ScopeKind::numa, 2});
  mb.commit();
  ult::ThreadExecutor ex;
  run_tasks(rt, 8, ex, [&](hls::TaskView& view) {
    view.get(per_domain);
    view.get(per_socket);
  });
  EXPECT_EQ(rt.storage().copies(per_domain.handle().scope,
                                per_domain.handle().module),
            4);
  EXPECT_EQ(rt.storage().copies(per_socket.handle().scope,
                                per_socket.handle().module),
            2);
}

TEST(HlsStorage, NumaLevelCollapsesOnSingleDomainSockets) {
  // On Nehalem-EX one socket == one NUMA domain, so numa(2) and numa are
  // the same canonical scope (no duplicate storage).
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 4);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto a = hls::add_var<int>(mb, "a", topo::numa_scope());
  auto b =
      hls::add_var<int>(mb, "b", topo::ScopeSpec{topo::ScopeKind::numa, 2});
  mb.commit();
  EXPECT_EQ(a.handle().scope, b.handle().scope);
}

// ---------- heap-backed HLS variables (listing 4 pattern) ----------

TEST(HlsHeap, PointerVariableWithSingleAllocation) {
  // "an HLS global variable can point to heap-allocated memory with a
  // proper use of the single directive around allocation/deallocation".
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 8);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto bptr = hls::add_var<double*>(mb, "B", topo::node_scope(), nullptr);
  mb.commit();
  std::atomic<int> bad{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 8, ex, [&](hls::TaskView& view) {
    double*& B = view.get(bptr);
    view.single({bptr.handle()}, [&] {
      B = new double[64];
      for (int i = 0; i < 64; ++i) B[i] = i * 0.5;
    });
    if (B == nullptr || B[10] != 5.0) ++bad;
    view.barrier({bptr.handle()});
    view.single({bptr.handle()}, [&] {
      delete[] B;
      B = nullptr;
    });
    if (B != nullptr) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

// ---------- stress: oversubscribed single/nowait hammer ----------

TEST(HlsStress, SingleHammerExactlyOneWinnerPerEpisode) {
  // 8 tasks on 4 cpus (two per core) hammer alternating single /
  // single-nowait sites for 1000 iterations. An atomic per-episode ledger
  // proves exactly one winner per episode; the race checker rides along
  // and the episode counters must balance at the end.
  topo::Machine m = topo::Machine::generic(1, 4);
  const int ntasks = 8;
  const int iters = 1000;
  hls::Runtime rt(m, ntasks);
  hlsmpc::check::HlsChecker checker(rt.scope_map(), ntasks);
  rt.sync().set_observer(&checker);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  mb.commit();
  std::vector<std::atomic<int>> ledger(iters);
  std::vector<int> pins(ntasks);
  for (int i = 0; i < ntasks; ++i) pins[i] = i % m.num_cpus();
  ult::ThreadExecutor ex;
  ex.run(ntasks, pins, [&](ult::TaskContext& ctx) {
    hls::TaskView view(rt, ctx);
    view.get(v);
    for (int i = 0; i < iters; ++i) {
      if (i % 2 == 0) {
        view.single({v.handle()},
                    [&] { ledger[static_cast<std::size_t>(i)].fetch_add(1); });
      } else {
        view.single_nowait(
            {v.handle()},
            [&] { ledger[static_cast<std::size_t>(i)].fetch_add(1); });
      }
    }
  });
  rt.sync().set_observer(nullptr);
  for (int i = 0; i < iters; ++i) {
    ASSERT_EQ(ledger[static_cast<std::size_t>(i)].load(), 1)
        << "episode " << i << " had the wrong number of winners";
  }
  const hls::CanonicalScope node{topo::ScopeKind::node, 0};
  EXPECT_EQ(rt.sync().instance_sync_count(node, 0),
            static_cast<std::uint64_t>(iters));
  for (int t = 0; t < ntasks; ++t) {
    EXPECT_EQ(rt.sync().task_sync_count(t, node),
              static_cast<std::uint64_t>(iters))
        << "task " << t;
  }
  EXPECT_TRUE(checker.verify()) << checker.report();
}

// ---------- property sweep: episode counters stay consistent ----------

class HlsCounterSweep : public testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Episodes, HlsCounterSweep,
                         testing::Values(1, 3, 10));

TEST_P(HlsCounterSweep, TaskAndInstanceCountsAgree) {
  const int episodes = GetParam();
  topo::Machine m = topo::Machine::nehalem_ex(2);
  hls::Runtime rt(m, 16);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  mb.commit();
  ult::ThreadExecutor ex;
  run_tasks(rt, 16, ex, [&](hls::TaskView& view) {
    for (int e = 0; e < episodes; ++e) {
      switch (e % 3) {
        case 0:
          view.barrier({v.handle()});
          break;
        case 1:
          view.single({v.handle()}, [] {});
          break;
        case 2:
          view.single_nowait({v.handle()}, [] {});
          break;
      }
    }
  });
  const hls::CanonicalScope node{topo::ScopeKind::node, 0};
  const auto inst_count = rt.sync().instance_sync_count(node, 0);
  EXPECT_EQ(inst_count, static_cast<std::uint64_t>(episodes));
  for (int t = 0; t < 16; ++t) {
    EXPECT_EQ(rt.sync().task_sync_count(t, node),
              static_cast<std::uint64_t>(episodes))
        << "task " << t;
  }
}
