#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>

#include "shm/arena.hpp"
#include "shm/process_node.hpp"
#include "shm/segment.hpp"
#include "topo/topology.hpp"

namespace shm = hlsmpc::shm;
namespace topo = hlsmpc::topo;

namespace {

/// A pid guaranteed dead and reaped (fork a child that exits at once).
pid_t dead_pid() {
  const pid_t pid = fork();
  if (pid == 0) _exit(0);
  int status = 0;
  waitpid(pid, &status, 0);
  return pid;
}

/// Create a raw /dev/shm entry (simulating a crashed run's leftover).
void make_raw_segment(const std::string& name) {
  const int fd = shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(ftruncate(fd, 4096), 0);
  close(fd);
}

}  // namespace

TEST(Segment, AnonymousIsReadWrite) {
  shm::AnonymousSegment seg(1 << 16);
  auto* p = static_cast<unsigned char*>(seg.base());
  p[0] = 42;
  p[(1 << 16) - 1] = 7;
  EXPECT_EQ(p[0], 42);
}

TEST(Segment, NamedSegmentSharedAcrossAttaches) {
  const std::string name = "/hlsmpc_test_" + std::to_string(getpid());
  void* hint = reinterpret_cast<void*>(0x7f1234500000ULL);
  shm::NamedSegment owner(name, 1 << 16, hint, /*owner=*/true);
  EXPECT_EQ(owner.base(), hint);
  std::strcpy(static_cast<char*>(owner.base()), "hello");
  {
    // Attach at a different address is allowed only without a hint; the
    // same hint must fail while the owner holds the range.
    EXPECT_THROW(shm::NamedSegment(name, 1 << 16, hint, false),
                 shm::ShmError);
    shm::NamedSegment view(name, 1 << 16, nullptr, false);
    EXPECT_STREQ(static_cast<char*>(view.base()), "hello");
  }
}

TEST(Segment, NamedSegmentOwnerCleansUp) {
  const std::string name = "/hlsmpc_gone_" + std::to_string(getpid());
  { shm::NamedSegment owner(name, 4096, nullptr, true); }
  EXPECT_THROW(shm::NamedSegment(name, 4096, nullptr, false), shm::ShmError);
}

TEST(Segment, UniqueNamesAreDistinctAndUsable) {
  std::set<std::string> names;
  for (int i = 0; i < 16; ++i) {
    const std::string n = shm::NamedSegment::unique_name("uniq");
    EXPECT_EQ(n.rfind("/hlsmpc.uniq.", 0), 0u) << n;
    EXPECT_NE(n.find("." + std::to_string(getpid()) + "."),
              std::string::npos) << n;
    names.insert(n);
  }
  EXPECT_EQ(names.size(), 16u);
  shm::NamedSegment seg(shm::NamedSegment::unique_name("uniq"), 4096, nullptr,
                        /*owner=*/true);
  EXPECT_NE(seg.base(), nullptr);
}

TEST(Segment, CleanupStaleRemovesDeadOwnersOnly) {
  const pid_t dead = dead_pid();
  const std::string stale =
      "/hlsmpc.stalesweep." + std::to_string(dead) + ".0";
  const std::string live =
      "/hlsmpc.stalesweep." + std::to_string(getpid()) + ".0";
  make_raw_segment(stale);
  make_raw_segment(live);
  EXPECT_EQ(shm::NamedSegment::cleanup_stale("stalesweep"), 1);
  // The dead owner's segment is gone; the live owner's survives.
  EXPECT_THROW(shm::NamedSegment(stale, 4096, nullptr, /*owner=*/false),
               shm::ShmError);
  shm::NamedSegment view(live, 4096, nullptr, /*owner=*/false);
  EXPECT_NE(view.base(), nullptr);
  shm_unlink(live.c_str());
  // Nothing left to sweep.
  EXPECT_EQ(shm::NamedSegment::cleanup_stale("stalesweep"), 0);
}

TEST(Segment, OwnerReclaimsOrphanOfDeadProcess) {
  // A crashed run left a segment behind (no destructor ran). A new owner
  // colliding with it must notice the embedded pid is dead, unlink the
  // corpse and retry — not fail with EEXIST.
  const pid_t dead = dead_pid();
  const std::string name = "/hlsmpc.reclaim." + std::to_string(dead) + ".7";
  make_raw_segment(name);
  shm::NamedSegment owner(name, 8192, nullptr, /*owner=*/true);
  EXPECT_NE(owner.base(), nullptr);
  EXPECT_EQ(owner.size(), 8192u);
}

TEST(Arena, AllocateWriteFree) {
  std::vector<std::byte> mem(1 << 16);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  void* p = a->allocate(100);
  std::memset(p, 0xAB, 100);
  EXPECT_GT(a->bytes_used(), 0u);
  a->deallocate(p);
  EXPECT_EQ(a->bytes_used(), 0u);
}

TEST(Arena, CoalescingKeepsFreeListSmall) {
  std::vector<std::byte> mem(1 << 16);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  void* p1 = a->allocate(256);
  void* p2 = a->allocate(256);
  void* p3 = a->allocate(256);
  a->deallocate(p1);
  a->deallocate(p3);
  a->deallocate(p2);  // merges with both neighbours and the tail
  EXPECT_EQ(a->free_blocks(), 1);
  EXPECT_EQ(a->bytes_used(), 0u);
}

TEST(Arena, AlignedAllocation) {
  std::vector<std::byte> mem(1 << 16);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  void* p = a->allocate(64, 256);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 256, 0u);
  a->deallocate(p);
  EXPECT_EQ(a->bytes_used(), 0u);
}

TEST(Arena, ExhaustionThrowsArenaExhausted) {
  std::vector<std::byte> mem(4096);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  try {
    a->allocate(1 << 20);
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), hlsmpc::ErrorCode::arena_exhausted);
    EXPECT_TRUE(e.recoverable());
    EXPECT_NE(std::string(e.what()).find("out of space"), std::string::npos);
  }
}

TEST(Arena, RandomAllocFreeIntegrity) {
  std::vector<std::byte> mem(1 << 18);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  std::uint64_t seed = 99;
  auto next = [&seed] {
    seed = seed * 6364136223846793005ULL + 1;
    return seed >> 33;
  };
  struct Alloc {
    unsigned char* p;
    std::size_t n;
    unsigned char tag;
  };
  std::vector<Alloc> live;
  for (int i = 0; i < 500; ++i) {
    if (live.empty() || next() % 2 == 0) {
      const std::size_t n = 1 + next() % 700;
      auto* p = static_cast<unsigned char*>(a->allocate(n));
      const auto tag = static_cast<unsigned char>(next());
      std::memset(p, tag, n);
      live.push_back({p, n, tag});
    } else {
      const std::size_t k = next() % live.size();
      for (std::size_t j = 0; j < live[k].n; ++j) {
        ASSERT_EQ(live[k].p[j], live[k].tag) << "heap corruption";
      }
      a->deallocate(live[k].p);
      live[k] = live.back();
      live.pop_back();
    }
  }
  for (const Alloc& al : live) {
    for (std::size_t j = 0; j < al.n; ++j) {
      ASSERT_EQ(al.p[j], al.tag);
    }
    a->deallocate(al.p);
  }
  EXPECT_EQ(a->bytes_used(), 0u);
  EXPECT_EQ(a->free_blocks(), 1);
}

TEST(Arena, AttachSeesSameState) {
  std::vector<std::byte> mem(1 << 16);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  void* p = a->allocate(64);
  shm::Arena* b = shm::Arena::attach(mem.data());
  EXPECT_EQ(b->bytes_used(), a->bytes_used());
  b->deallocate(p);
  EXPECT_EQ(a->bytes_used(), 0u);
  EXPECT_THROW(shm::Arena::attach(mem.data() + 64), shm::ShmError);
}

// ---- process-based node (paper §IV.C end to end) ----

TEST(ProcessNode, SharesNodeVariableAcrossProcesses) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("table", 1024 * sizeof(double), topo::node_scope());
  node.run([](shm::ProcessTask& t) {
    auto* table = t.var_as<double>("table");
    // One process per node initializes (the single directive).
    if (t.single_enter("table")) {
      for (int i = 0; i < 1024; ++i) table[i] = i * 0.5;
      t.single_done("table");
    }
    // Every process must observe the initialization through the shared
    // segment (same virtual address in each process).
    for (int i = 0; i < 1024; ++i) {
      if (table[i] != i * 0.5) _exit(3);
    }
  });
}

TEST(ProcessNode, ScopedVariablesUseDistinctInstances) {
  const topo::Machine m = topo::Machine::core2_cluster_node();  // 2 sockets
  shm::ProcessNode node(m, 8);
  node.add_var("per_numa", sizeof(long), topo::numa_scope());
  node.run([](shm::ProcessTask& t) {
    auto* v = t.var_as<long>("per_numa");
    if (t.single_enter("per_numa")) {
      *v = 100 + t.rank() / 4;  // numa id of the writer
      t.single_done("per_numa");
    }
    t.barrier("per_numa");
    const long expected = 100 + t.rank() / 4;
    if (*v != expected) _exit(3);
  });
}

TEST(ProcessNode, BarrierSynchronizesProcesses) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("counter", sizeof(long), topo::node_scope());
  node.run([](shm::ProcessTask& t) {
    auto* v = t.var_as<long>("counter");
    for (int round = 0; round < 3; ++round) {
      __atomic_add_fetch(v, 1, __ATOMIC_SEQ_CST);
      t.barrier("counter");
      const long seen = __atomic_load_n(v, __ATOMIC_SEQ_CST);
      if (seen < 4L * (round + 1)) _exit(3);
      t.barrier("counter");
    }
  });
}

TEST(ProcessNode, SharedMallocVisibleEverywhere) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("B", sizeof(double*), topo::node_scope());
  node.run([](shm::ProcessTask& t) {
    auto** b = t.var_as<double*>("B");
    // Heap allocation inside a single goes to the shared arena: the
    // pointer is meaningful in every process (§IV.C).
    if (t.single_enter("B")) {
      *b = static_cast<double*>(t.shared_malloc(256 * sizeof(double)));
      for (int i = 0; i < 256; ++i) (*b)[i] = i + 0.25;
      t.single_done("B");
    }
    for (int i = 0; i < 256; ++i) {
      if ((*b)[i] != i + 0.25) _exit(3);
    }
    t.barrier("B");
    if (t.single_enter("B")) {
      t.shared_free(*b);
      t.single_done("B");
    }
  });
}

TEST(ProcessNode, ChildFailureSurfaces) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 2);
  node.add_var("x", 8, topo::node_scope());
  EXPECT_THROW(node.run([](shm::ProcessTask& t) {
                 if (t.rank() == 1) _exit(9);
               }),
               shm::ShmError);
}

TEST(ProcessNode, Misuse) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 2);
  node.add_var("x", 8, topo::node_scope());
  EXPECT_THROW(node.add_var("x", 8, topo::node_scope()), shm::ShmError);
  node.run([](shm::ProcessTask& t) {
    bool threw = false;
    try {
      t.var("nope");
    } catch (const shm::ShmError&) {
      threw = true;
    }
    if (!threw) _exit(3);
  });
  EXPECT_THROW(node.run([](shm::ProcessTask&) {}), shm::ShmError);
  EXPECT_THROW(shm::ProcessNode(m, 99), shm::ShmError);
}

// ---- crash containment (robust sync + SIGCHLD supervision) ----

TEST(ProcessNode, SigkilledRankMidBarrierIsNamedNotHung) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("x", 8, topo::node_scope());
  const auto start = std::chrono::steady_clock::now();
  try {
    node.run([](shm::ProcessTask& t) {
      if (t.rank() == 2) raise(SIGKILL);  // dies on the way into the barrier
      t.barrier("x");
    });
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), hlsmpc::ErrorCode::task_died);
    EXPECT_FALSE(e.recoverable());
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("killed by signal 9"),
              std::string::npos)
        << e.what();
  }
  // Detected by SIGCHLD supervision + abort flag, nowhere near the 30 s
  // sync timeout (the pre-containment behaviour was an indefinite hang).
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
}

TEST(ProcessNode, SigkilledSingleWinnerIsNamedNotHung) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("x", 8, topo::node_scope());
  const auto start = std::chrono::steady_clock::now();
  try {
    node.run([](shm::ProcessTask& t) {
      if (t.single_enter("x")) {
        raise(SIGKILL);  // the winner dies before single_done
      }
    });
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), hlsmpc::ErrorCode::task_died);
    EXPECT_NE(std::string(e.what()).find("killed by signal 9"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("rank "), std::string::npos)
        << e.what();
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
}

TEST(ProcessNode, LivelockedRankHitsSyncTimeout) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode::Options opts;
  opts.sync_timeout_ms = 300;
  opts.poll_interval_ms = 20;
  opts.term_grace_ms = 200;
  shm::ProcessNode node(m, 4, opts);
  node.add_var("x", 8, topo::node_scope());
  const auto start = std::chrono::steady_clock::now();
  try {
    node.run([](shm::ProcessTask& t) {
      if (t.rank() == 3) {
        // Alive but never arriving: only the timed wait can diagnose it.
        for (;;) pause();
      }
      t.barrier("x");
    });
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), hlsmpc::ErrorCode::sync_timeout);
    EXPECT_NE(std::string(e.what()).find("timed out inside a sync primitive"),
              std::string::npos)
        << e.what();
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));
}

// An RMA-style passive-target lock word (mpi/rma.hpp's layout: bit 63 =
// exclusive, bits 32.. = owner+1) lives in node-shared storage; the rank
// holding it exclusively is SIGKILLed. The supervisor must name the dead
// rank, and the surviving ranks must recover the orphaned word the way
// robust mutexes signal EOWNERDEAD: observe the holder is gone, restore
// the word to a consistent (free) state, and take the lock themselves.
TEST(ProcessNode, SigkilledExclusiveLockHolderIsNamedAndWordRecovered) {
  constexpr std::uint64_t kExclBit = std::uint64_t{1} << 63;
  const auto excl_word = [](int rank) {
    return kExclBit | (static_cast<std::uint64_t>(rank + 1) << 32);
  };
  const std::string marker =
      testing::TempDir() + "/hlsmpc_rma_lock_recovery_marker";
  std::remove(marker.c_str());

  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  // [0] = lock word, [1] = holder pid (so survivors can prove it died).
  node.add_var("win", 2 * sizeof(std::uint64_t), topo::node_scope());
  const auto start = std::chrono::steady_clock::now();
  try {
    node.run([&](shm::ProcessTask& t) {
      auto* base = t.var_as<std::uint64_t>("win");
      auto* word = reinterpret_cast<std::atomic<std::uint64_t>*>(base);
      auto* holder_pid = reinterpret_cast<std::atomic<std::uint64_t>*>(base + 1);
      if (t.rank() == 1) {
        std::uint64_t expected = 0;
        word->compare_exchange_strong(expected, excl_word(1));
        holder_pid->store(static_cast<std::uint64_t>(getpid()));
        raise(SIGKILL);  // dies holding the exclusive lock
      }
      // Survivors: wait until rank 1 provably holds the word, then wait
      // for its death (ESRCH once the supervisor reaped it) and recover.
      while (word->load() != excl_word(1) || holder_pid->load() == 0) {
        usleep(500);
      }
      const pid_t dead = static_cast<pid_t>(holder_pid->load());
      while (!(kill(dead, 0) == -1 && errno == ESRCH)) usleep(500);
      std::uint64_t orphaned = excl_word(1);
      if (word->compare_exchange_strong(orphaned, 0)) {
        // This rank made the word consistent again; leave the evidence.
        if (FILE* f = fopen(marker.c_str(), "w")) fclose(f);
      }
      // The recovered word must be takeable by a survivor.
      for (;;) {
        std::uint64_t free_word = 0;
        if (word->compare_exchange_strong(free_word, excl_word(t.rank()))) {
          word->store(0);
          break;
        }
        usleep(100);
      }
      t.barrier("win");  // rank 1 never arrives: the supervisor reports it
    });
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), hlsmpc::ErrorCode::task_died);
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("killed by signal 9"),
              std::string::npos)
        << e.what();
  }
  // Exactly one survivor won the recovery CAS and left the marker.
  FILE* f = fopen(marker.c_str(), "r");
  EXPECT_NE(f, nullptr) << "no survivor recovered the orphaned lock word";
  if (f != nullptr) fclose(f);
  std::remove(marker.c_str());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(20));
}
