#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>

#include "shm/arena.hpp"
#include "shm/process_node.hpp"
#include "shm/segment.hpp"
#include "topo/topology.hpp"

namespace shm = hlsmpc::shm;
namespace topo = hlsmpc::topo;

TEST(Segment, AnonymousIsReadWrite) {
  shm::AnonymousSegment seg(1 << 16);
  auto* p = static_cast<unsigned char*>(seg.base());
  p[0] = 42;
  p[(1 << 16) - 1] = 7;
  EXPECT_EQ(p[0], 42);
}

TEST(Segment, NamedSegmentSharedAcrossAttaches) {
  const std::string name = "/hlsmpc_test_" + std::to_string(getpid());
  void* hint = reinterpret_cast<void*>(0x7f1234500000ULL);
  shm::NamedSegment owner(name, 1 << 16, hint, /*owner=*/true);
  EXPECT_EQ(owner.base(), hint);
  std::strcpy(static_cast<char*>(owner.base()), "hello");
  {
    // Attach at a different address is allowed only without a hint; the
    // same hint must fail while the owner holds the range.
    EXPECT_THROW(shm::NamedSegment(name, 1 << 16, hint, false),
                 shm::ShmError);
    shm::NamedSegment view(name, 1 << 16, nullptr, false);
    EXPECT_STREQ(static_cast<char*>(view.base()), "hello");
  }
}

TEST(Segment, NamedSegmentOwnerCleansUp) {
  const std::string name = "/hlsmpc_gone_" + std::to_string(getpid());
  { shm::NamedSegment owner(name, 4096, nullptr, true); }
  EXPECT_THROW(shm::NamedSegment(name, 4096, nullptr, false), shm::ShmError);
}

TEST(Arena, AllocateWriteFree) {
  std::vector<std::byte> mem(1 << 16);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  void* p = a->allocate(100);
  std::memset(p, 0xAB, 100);
  EXPECT_GT(a->bytes_used(), 0u);
  a->deallocate(p);
  EXPECT_EQ(a->bytes_used(), 0u);
}

TEST(Arena, CoalescingKeepsFreeListSmall) {
  std::vector<std::byte> mem(1 << 16);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  void* p1 = a->allocate(256);
  void* p2 = a->allocate(256);
  void* p3 = a->allocate(256);
  a->deallocate(p1);
  a->deallocate(p3);
  a->deallocate(p2);  // merges with both neighbours and the tail
  EXPECT_EQ(a->free_blocks(), 1);
  EXPECT_EQ(a->bytes_used(), 0u);
}

TEST(Arena, AlignedAllocation) {
  std::vector<std::byte> mem(1 << 16);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  void* p = a->allocate(64, 256);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 256, 0u);
  a->deallocate(p);
  EXPECT_EQ(a->bytes_used(), 0u);
}

TEST(Arena, ExhaustionThrowsBadAlloc) {
  std::vector<std::byte> mem(4096);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  EXPECT_THROW(a->allocate(1 << 20), std::bad_alloc);
}

TEST(Arena, RandomAllocFreeIntegrity) {
  std::vector<std::byte> mem(1 << 18);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  std::uint64_t seed = 99;
  auto next = [&seed] {
    seed = seed * 6364136223846793005ULL + 1;
    return seed >> 33;
  };
  struct Alloc {
    unsigned char* p;
    std::size_t n;
    unsigned char tag;
  };
  std::vector<Alloc> live;
  for (int i = 0; i < 500; ++i) {
    if (live.empty() || next() % 2 == 0) {
      const std::size_t n = 1 + next() % 700;
      auto* p = static_cast<unsigned char*>(a->allocate(n));
      const auto tag = static_cast<unsigned char>(next());
      std::memset(p, tag, n);
      live.push_back({p, n, tag});
    } else {
      const std::size_t k = next() % live.size();
      for (std::size_t j = 0; j < live[k].n; ++j) {
        ASSERT_EQ(live[k].p[j], live[k].tag) << "heap corruption";
      }
      a->deallocate(live[k].p);
      live[k] = live.back();
      live.pop_back();
    }
  }
  for (const Alloc& al : live) {
    for (std::size_t j = 0; j < al.n; ++j) {
      ASSERT_EQ(al.p[j], al.tag);
    }
    a->deallocate(al.p);
  }
  EXPECT_EQ(a->bytes_used(), 0u);
  EXPECT_EQ(a->free_blocks(), 1);
}

TEST(Arena, AttachSeesSameState) {
  std::vector<std::byte> mem(1 << 16);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  void* p = a->allocate(64);
  shm::Arena* b = shm::Arena::attach(mem.data());
  EXPECT_EQ(b->bytes_used(), a->bytes_used());
  b->deallocate(p);
  EXPECT_EQ(a->bytes_used(), 0u);
  EXPECT_THROW(shm::Arena::attach(mem.data() + 64), shm::ShmError);
}

// ---- process-based node (paper §IV.C end to end) ----

TEST(ProcessNode, SharesNodeVariableAcrossProcesses) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("table", 1024 * sizeof(double), topo::node_scope());
  node.run([](shm::ProcessTask& t) {
    auto* table = t.var_as<double>("table");
    // One process per node initializes (the single directive).
    if (t.single_enter("table")) {
      for (int i = 0; i < 1024; ++i) table[i] = i * 0.5;
      t.single_done("table");
    }
    // Every process must observe the initialization through the shared
    // segment (same virtual address in each process).
    for (int i = 0; i < 1024; ++i) {
      if (table[i] != i * 0.5) _exit(3);
    }
  });
}

TEST(ProcessNode, ScopedVariablesUseDistinctInstances) {
  const topo::Machine m = topo::Machine::core2_cluster_node();  // 2 sockets
  shm::ProcessNode node(m, 8);
  node.add_var("per_numa", sizeof(long), topo::numa_scope());
  node.run([](shm::ProcessTask& t) {
    auto* v = t.var_as<long>("per_numa");
    if (t.single_enter("per_numa")) {
      *v = 100 + t.rank() / 4;  // numa id of the writer
      t.single_done("per_numa");
    }
    t.barrier("per_numa");
    const long expected = 100 + t.rank() / 4;
    if (*v != expected) _exit(3);
  });
}

TEST(ProcessNode, BarrierSynchronizesProcesses) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("counter", sizeof(long), topo::node_scope());
  node.run([](shm::ProcessTask& t) {
    auto* v = t.var_as<long>("counter");
    for (int round = 0; round < 3; ++round) {
      __atomic_add_fetch(v, 1, __ATOMIC_SEQ_CST);
      t.barrier("counter");
      const long seen = __atomic_load_n(v, __ATOMIC_SEQ_CST);
      if (seen < 4L * (round + 1)) _exit(3);
      t.barrier("counter");
    }
  });
}

TEST(ProcessNode, SharedMallocVisibleEverywhere) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("B", sizeof(double*), topo::node_scope());
  node.run([](shm::ProcessTask& t) {
    auto** b = t.var_as<double*>("B");
    // Heap allocation inside a single goes to the shared arena: the
    // pointer is meaningful in every process (§IV.C).
    if (t.single_enter("B")) {
      *b = static_cast<double*>(t.shared_malloc(256 * sizeof(double)));
      for (int i = 0; i < 256; ++i) (*b)[i] = i + 0.25;
      t.single_done("B");
    }
    for (int i = 0; i < 256; ++i) {
      if ((*b)[i] != i + 0.25) _exit(3);
    }
    t.barrier("B");
    if (t.single_enter("B")) {
      t.shared_free(*b);
      t.single_done("B");
    }
  });
}

TEST(ProcessNode, ChildFailureSurfaces) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 2);
  node.add_var("x", 8, topo::node_scope());
  EXPECT_THROW(node.run([](shm::ProcessTask& t) {
                 if (t.rank() == 1) _exit(9);
               }),
               shm::ShmError);
}

TEST(ProcessNode, Misuse) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 2);
  node.add_var("x", 8, topo::node_scope());
  EXPECT_THROW(node.add_var("x", 8, topo::node_scope()), shm::ShmError);
  node.run([](shm::ProcessTask& t) {
    bool threw = false;
    try {
      t.var("nope");
    } catch (const shm::ShmError&) {
      threw = true;
    }
    if (!threw) _exit(3);
  });
  EXPECT_THROW(node.run([](shm::ProcessTask&) {}), shm::ShmError);
  EXPECT_THROW(shm::ProcessNode(m, 99), shm::ShmError);
}
