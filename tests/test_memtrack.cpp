#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "memtrack/memtrack.hpp"

namespace mt = hlsmpc::memtrack;

TEST(Tracker, AllocFreeAccounting) {
  mt::Tracker t;
  t.on_alloc(mt::Category::app, 100);
  t.on_alloc(mt::Category::hls_shared, 50);
  EXPECT_EQ(t.current(mt::Category::app), 100u);
  EXPECT_EQ(t.current(mt::Category::hls_shared), 50u);
  EXPECT_EQ(t.current_total(), 150u);
  t.on_free(mt::Category::app, 100);
  EXPECT_EQ(t.current_total(), 50u);
  EXPECT_EQ(t.peak_total(), 150u);
}

TEST(Tracker, PeakTracksHighWaterMark) {
  mt::Tracker t;
  t.on_alloc(mt::Category::app, 10);
  t.on_free(mt::Category::app, 10);
  t.on_alloc(mt::Category::app, 6);
  EXPECT_EQ(t.peak_total(), 10u);
  t.on_alloc(mt::Category::app, 20);
  EXPECT_EQ(t.peak_total(), 26u);
}

TEST(Tracker, OverFreeThrows) {
  mt::Tracker t;
  t.on_alloc(mt::Category::app, 10);
  EXPECT_THROW(t.on_free(mt::Category::app, 11), std::logic_error);
}

TEST(Tracker, ConcurrentAccountingIsExact) {
  mt::Tracker t;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < kIters; ++j) {
        t.on_alloc(mt::Category::runtime_buffers, 64);
        t.on_free(mt::Category::runtime_buffers, 64);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.current_total(), 0u);
  EXPECT_GE(t.peak_total(), 64u);
  EXPECT_LE(t.peak_total(), 64u * kThreads);
}

TEST(Buffer, RaiiChargesAndReleases) {
  mt::Tracker t;
  {
    mt::Buffer b(t, mt::Category::app, 1024);
    EXPECT_EQ(t.current_total(), 1024u);
    EXPECT_EQ(b.size(), 1024u);
    // Zero-initialized.
    EXPECT_EQ(b.as<unsigned char>()[0], 0u);
    EXPECT_EQ(b.as<unsigned char>()[1023], 0u);
  }
  EXPECT_EQ(t.current_total(), 0u);
}

TEST(Buffer, MoveTransfersOwnership) {
  mt::Tracker t;
  mt::Buffer a(t, mt::Category::app, 100);
  mt::Buffer b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) - testing moved-from state
  EXPECT_TRUE(b);
  EXPECT_EQ(t.current_total(), 100u);
  mt::Buffer c(t, mt::Category::app, 7);
  c = std::move(b);
  EXPECT_EQ(t.current_total(), 100u);  // the 7-byte buffer was released
  c.reset();
  EXPECT_EQ(t.current_total(), 0u);
}

TEST(Sampler, AvgAndMaxMatchPaperStatistic) {
  mt::Tracker t;
  mt::Sampler s(t);
  t.on_alloc(mt::Category::app, 100);
  s.sample();
  t.on_alloc(mt::Category::app, 300);
  s.sample();
  t.on_free(mt::Category::app, 200);
  s.sample();
  EXPECT_EQ(s.num_samples(), 3u);
  EXPECT_DOUBLE_EQ(s.avg_bytes(), (100.0 + 400.0 + 200.0) / 3.0);
  EXPECT_EQ(s.max_bytes(), 400u);
}

TEST(Sampler, EmptySamplerIsZero) {
  mt::Tracker t;
  mt::Sampler s(t);
  EXPECT_DOUBLE_EQ(s.avg_bytes(), 0.0);
  EXPECT_EQ(s.max_bytes(), 0u);
}

TEST(Category, Names) {
  EXPECT_STREQ(mt::to_string(mt::Category::app), "app");
  EXPECT_STREQ(mt::to_string(mt::Category::hls_shared), "hls_shared");
  EXPECT_STREQ(mt::to_string(mt::Category::runtime_buffers), "runtime_buffers");
  EXPECT_STREQ(mt::to_string(mt::Category::runtime_other), "runtime_other");
}
