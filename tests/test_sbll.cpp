#include <gtest/gtest.h>

#include "sbll/page_merge.hpp"

namespace sbll = hlsmpc::sbll;

TEST(PageMerge, IdenticalRegionMergesToOneCopy) {
  sbll::PageMergeModel m;
  const int r = m.add_region(64 * 1024, 8);
  EXPECT_EQ(m.virtual_bytes(), 8u * 64 * 1024);
  EXPECT_EQ(m.physical_bytes(), 8u * 64 * 1024);  // nothing merged yet
  m.scan();
  EXPECT_EQ(m.physical_bytes(), 64u * 1024);  // all copies identical
  EXPECT_EQ(m.stats().pages_merged, 16u);
  (void)r;
}

TEST(PageMerge, WriteUnmergesOnePage) {
  sbll::PageMergeModel m;
  const int r = m.add_region(64 * 1024, 8);
  m.scan();
  const std::size_t merged = m.physical_bytes();
  m.write(r, 3, 5000, 8, /*version=*/1, /*rank_dependent=*/true);
  // One 4 KB page is private again for all 8 copies.
  EXPECT_EQ(m.physical_bytes(), merged + 7 * 4096);
  EXPECT_EQ(m.stats().unmerge_faults, 1u);
  EXPECT_GT(m.stats().overhead_cycles, 0u);
}

TEST(PageMerge, IdenticalRewriteRemergesOnNextScan) {
  // The SPMD pattern: every rank rewrites the page with the same value;
  // the scanner can merge it again — but only at the NEXT pass, and each
  // write paid a fault. (HLS's single writes once and pays neither.)
  sbll::PageMergeModel m;
  const int r = m.add_region(4096, 4);
  m.scan();
  for (int rank = 0; rank < 4; ++rank) {
    m.write(r, rank, 0, 4096, /*version=*/7, /*rank_dependent=*/false);
  }
  EXPECT_EQ(m.physical_bytes(), 4u * 4096);  // split until rescan
  m.scan();
  EXPECT_EQ(m.physical_bytes(), 4096u);
  EXPECT_EQ(m.stats().unmerge_faults, 1u);  // first write faulted
}

TEST(PageMerge, RankDependentPagesNeverMerge) {
  sbll::PageMergeModel m;
  const int r = m.add_region(8192, 4);
  for (int rank = 0; rank < 4; ++rank) {
    m.write(r, rank, 0, 8192, /*version=*/1, /*rank_dependent=*/true);
  }
  m.scan();
  m.scan();
  EXPECT_EQ(m.physical_bytes(), 4u * 8192);
}

TEST(PageMerge, PageGranularityLosesPartialSharing) {
  // The paper's granularity point: one rank-dependent byte poisons its
  // whole page, while HLS shares at variable granularity.
  sbll::PageMergeModel m;
  const int r = m.add_region(16 * 4096, 8);
  // Each rank writes 1 byte in page 0 with its rank id.
  for (int rank = 0; rank < 8; ++rank) {
    m.write(r, rank, 10, 1, 1, /*rank_dependent=*/true);
  }
  m.scan();
  // 15 pages merged, page 0 replicated 8x.
  EXPECT_EQ(m.physical_bytes(), 15u * 4096 + 8u * 4096);
}

TEST(PageMerge, ScanCostScalesWithPagesAndCopies) {
  sbll::Config cfg;
  cfg.scan_cost_per_page = 100;
  sbll::PageMergeModel m(cfg);
  m.add_region(8 * 4096, 4);
  m.scan();
  EXPECT_EQ(m.stats().pages_scanned, 32u);
  EXPECT_EQ(m.stats().overhead_cycles, 3200u);
}

TEST(PageMerge, ArgumentValidation) {
  sbll::PageMergeModel m;
  EXPECT_THROW(m.add_region(0, 4), std::invalid_argument);
  EXPECT_THROW(m.add_region(4096, 0), std::invalid_argument);
  const int r = m.add_region(4096, 2);
  EXPECT_THROW(m.write(99, 0, 0, 1, 1, false), std::out_of_range);
  EXPECT_THROW(m.write(r, 5, 0, 1, 1, false), std::out_of_range);
  EXPECT_THROW(m.write(r, 0, 4000, 200, 1, false), std::out_of_range);
}
