// Property tests: the set-associative Cache against a straightforward
// reference model (per-set LRU list), on randomized access streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

#include "cachesim/cache.hpp"

namespace cs = hlsmpc::cachesim;

namespace {

/// Reference cache: per set, an LRU-ordered list of (tag, dirty).
class ReferenceCache {
 public:
  ReferenceCache(std::size_t size, std::size_t line, int assoc)
      : assoc_(assoc), sets_(size / line / static_cast<std::size_t>(assoc)) {
    lists_.resize(sets_);
  }

  struct Result {
    bool hit;
    bool evicted;
    std::uint64_t victim;
    bool victim_dirty;
  };

  Result access(std::uint64_t tag, bool write) {
    auto& lru = lists_[tag % sets_];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->first == tag) {
        const bool dirty = it->second || write;
        lru.erase(it);
        lru.push_front({tag, dirty});
        return {true, false, 0, false};
      }
    }
    Result r{false, false, 0, false};
    if (static_cast<int>(lru.size()) == assoc_) {
      r.evicted = true;
      r.victim = lru.back().first;
      r.victim_dirty = lru.back().second;
      lru.pop_back();
    }
    lru.push_front({tag, write});
    return r;
  }

  bool invalidate(std::uint64_t tag) {
    auto& lru = lists_[tag % sets_];
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if (it->first == tag) {
        lru.erase(it);
        return true;
      }
    }
    return false;
  }

  bool contains(std::uint64_t tag) const {
    const auto& lru = lists_[tag % sets_];
    return std::any_of(lru.begin(), lru.end(),
                       [&](const auto& e) { return e.first == tag; });
  }

 private:
  int assoc_;
  std::size_t sets_;
  std::vector<std::list<std::pair<std::uint64_t, bool>>> lists_;
};

struct Geometry {
  std::size_t size;
  std::size_t line;
  int assoc;
};

class CacheModelSweep : public testing::TestWithParam<Geometry> {};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelSweep,
    testing::Values(Geometry{1024, 64, 1},       // direct-mapped
                    Geometry{1024, 64, 2},
                    Geometry{4096, 64, 4},
                    Geometry{8192, 64, 16},      // one set only... no: 8 sets
                    Geometry{16384, 128, 8}),
    [](const testing::TestParamInfo<Geometry>& info) {
      return std::to_string(info.param.size) + "b_" +
             std::to_string(info.param.line) + "l_" +
             std::to_string(info.param.assoc) + "w";
    });

TEST_P(CacheModelSweep, MatchesReferenceOnRandomStream) {
  const Geometry g = GetParam();
  cs::Cache cache(g.size, g.line, g.assoc);
  ReferenceCache ref(g.size, g.line, g.assoc);

  std::uint64_t seed = 12345 + g.size + static_cast<std::uint64_t>(g.assoc);
  auto next = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };

  const std::uint64_t tag_space =
      2 * g.size / g.line;  // 2x capacity: plenty of conflict traffic
  for (int i = 0; i < 20000; ++i) {
    const int op = static_cast<int>(next() % 10);
    const std::uint64_t tag = next() % tag_space;
    if (op == 9) {
      ASSERT_EQ(cache.invalidate(tag), ref.invalidate(tag)) << "step " << i;
      continue;
    }
    const bool write = op >= 6;
    const auto got = cache.access(tag, write);
    const auto want = ref.access(tag, write);
    ASSERT_EQ(got.hit, want.hit) << "step " << i << " tag " << tag;
    ASSERT_EQ(got.evicted, want.evicted) << "step " << i;
    if (want.evicted) {
      ASSERT_EQ(got.victim_line, want.victim) << "step " << i;
      ASSERT_EQ(got.victim_dirty, want.victim_dirty) << "step " << i;
    }
  }
  // Final content agreement on a sample of tags.
  for (std::uint64_t tag = 0; tag < tag_space; ++tag) {
    ASSERT_EQ(cache.contains(tag), ref.contains(tag)) << "tag " << tag;
  }
}

TEST_P(CacheModelSweep, FillMatchesAccessContents) {
  // fill() must land lines exactly where a miss-access would.
  const Geometry g = GetParam();
  cs::Cache a(g.size, g.line, g.assoc);
  cs::Cache b(g.size, g.line, g.assoc);
  std::uint64_t seed = 777;
  auto next = [&seed] {
    seed = seed * 2862933555777941757ULL + 3037000493ULL;
    return seed >> 33;
  };
  const std::uint64_t tag_space = 2 * g.size / g.line;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t tag = next() % tag_space;
    a.access(tag, false);
    b.fill(tag, false);
    // fill() also refreshes LRU on present lines, like access().
  }
  for (std::uint64_t tag = 0; tag < tag_space; ++tag) {
    ASSERT_EQ(a.contains(tag), b.contains(tag)) << "tag " << tag;
  }
}
