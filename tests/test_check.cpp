// Tests for the deterministic schedule explorer and the HLS race checker
// (src/check/): policies replay deterministically, the explorer finds and
// shrinks a seeded lost-wakeup bug, SyncManager survives systematic
// schedule exploration on every scope level with the checker attached,
// and the checker flags synthetic violations of the paper's conditions.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/deterministic_executor.hpp"
#include "check/explorer.hpp"
#include "check/hls_checker.hpp"
#include "hls/hls.hpp"
#include "ult/scheduler.hpp"

namespace check = hlsmpc::check;
namespace hls = hlsmpc::hls;
namespace topo = hlsmpc::topo;
namespace ult = hlsmpc::ult;

namespace {

/// Run `n` tasks pinned to cpus 0..n-1.
void run_tasks(hls::Runtime& rt, int n, ult::Executor& ex,
               const std::function<void(hls::TaskView&)>& body) {
  std::vector<int> pins(static_cast<std::size_t>(n));
  std::iota(pins.begin(), pins.end(), 0);
  ex.run(n, pins, [&](ult::TaskContext& ctx) {
    hls::TaskView view(rt, ctx);
    body(view);
  });
}

}  // namespace

// ---------- traces and policies ----------

TEST(ScheduleTrace, ToStringParseRoundTrip) {
  check::ScheduleTrace t;
  t.picks = {0, 2, 1, 1, 3, 0};
  EXPECT_EQ(check::to_string(t), "0 2 1 1 3 0");
  const check::ScheduleTrace back = check::parse_trace(check::to_string(t));
  EXPECT_EQ(back.picks, t.picks);
  EXPECT_TRUE(check::parse_trace("").empty());
}

TEST(SchedulePolicy, RoundRobinHonorsQuantumAndRotation) {
  check::RoundRobinPolicy p(/*quantum=*/2, /*rotation=*/1);
  p.reset(3);
  const std::vector<int> all{0, 1, 2};
  std::vector<int> got;
  for (int i = 0; i < 8; ++i) got.push_back(p.pick(all));
  EXPECT_EQ(got, (std::vector<int>{1, 1, 2, 2, 0, 0, 1, 1}));
  // A finished task is skipped over.
  p.reset(3);
  const std::vector<int> no1{0, 2};
  EXPECT_EQ(p.pick(no1), 2);  // rotation start 1 is gone; next in id order
}

TEST(SchedulePolicy, TracePolicyFallsBackFairly) {
  check::TracePolicy p(check::parse_trace("1 1"));
  p.reset(2);
  const std::vector<int> all{0, 1};
  EXPECT_EQ(p.pick(all), 1);
  EXPECT_EQ(p.pick(all), 1);
  // Trace exhausted: fair rotation, both tasks keep being scheduled.
  EXPECT_EQ(p.pick(all), 0);
  EXPECT_EQ(p.pick(all), 1);
  EXPECT_EQ(p.pick(all), 0);
}

TEST(DeterministicExecutor, RunsAllTasksAndRecordsTrace) {
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  int sum = 0;
  std::vector<int> pins{0, 1, 2};
  ex.run(3, pins, [&](ult::TaskContext& ctx) {
    for (int i = 0; i < 3; ++i) {
      ++sum;
      ctx.yield();
    }
  });
  EXPECT_EQ(sum, 9);
  EXPECT_GT(ex.steps(), 0);
  EXPECT_FALSE(ex.last_trace().empty());
  EXPECT_THROW(ex.run(2, pins, [](ult::TaskContext&) {}),
               std::invalid_argument);
}

TEST(DeterministicExecutor, SameSeedSameSchedule) {
  auto run_once = [](std::uint64_t seed) {
    check::RandomPolicy policy(seed);
    check::DeterministicExecutor ex(policy);
    std::vector<int> pins{0, 1, 2, 3};
    ex.run(4, pins, [&](ult::TaskContext& ctx) {
      for (int i = 0; i < 5; ++i) ctx.yield();
    });
    return ex.last_trace();
  };
  EXPECT_EQ(run_once(42).picks, run_once(42).picks);
  EXPECT_NE(run_once(42).picks, run_once(43).picks);
}

TEST(DeterministicExecutor, BudgetExhaustionRaisesDeadlockError) {
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy, /*max_steps=*/100);
  std::vector<int> pins{0, 1};
  try {
    ex.run(2, pins, [&](ult::TaskContext& ctx) {
      if (ctx.task_id() == 0) {
        while (true) ctx.yield();  // waits for a wakeup that never comes
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const check::DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("lost wakeup or deadlock"),
              std::string::npos);
    EXPECT_EQ(e.trace().size(), 100u);
  }
}

// ---------- the explorer finds, shrinks and replays a seeded bug ----------

namespace {

/// Deliberately broken flag-flip barrier: the waiter snapshots the flag
/// only *after* other tasks may have completed the round, so a preemption
/// in the marked window loses the wakeup (the classic lost-generation bug
/// the paper's generation counters exist to avoid).
class BrokenBarrier {
 public:
  explicit BrokenBarrier(int expected) : expected_(expected) {}

  void arrive(ult::TaskContext& ctx) {
    ++arrived_;
    // BUG: window between arriving and reading the release flag.
    ctx.sync_point("broken-barrier:arrived");
    if (arrived_ == expected_) {
      arrived_ = 0;
      flag_ = !flag_;
      return;
    }
    const bool snap = flag_;
    while (flag_ == snap) ctx.yield();
  }

 private:
  int expected_;
  int arrived_ = 0;
  bool flag_ = false;
};

/// Correct version: snapshot the generation before arriving.
class ToyBarrier {
 public:
  explicit ToyBarrier(int expected) : expected_(expected) {}

  void arrive(ult::TaskContext& ctx) {
    ctx.sync_point("toy-barrier:enter");
    const long gen = gen_;
    if (++arrived_ == expected_) {
      arrived_ = 0;
      ++gen_;
      return;
    }
    while (gen_ == gen) ctx.yield();
  }

 private:
  int expected_;
  int arrived_ = 0;
  long gen_ = 0;
};

check::ScheduleExplorer::Attempt broken_barrier_attempt() {
  return [](ult::Executor& ex) {
    BrokenBarrier bar(2);
    std::vector<int> pins{0, 1};
    ex.run(2, pins, [&](ult::TaskContext& ctx) {
      for (int round = 0; round < 2; ++round) bar.arrive(ctx);
    });
  };
}

}  // namespace

TEST(ScheduleExplorer, FindsLostWakeupInBrokenBarrier) {
  check::ExploreOptions opts;
  opts.schedules = 100;
  opts.max_steps = 2000;
  check::ScheduleExplorer explorer(opts);
  const check::ExploreResult res = explorer.explore(broken_barrier_attempt());

  ASSERT_FALSE(res.ok);
  EXPECT_GE(res.failing_schedule, 0);
  EXPECT_NE(res.error.find("lost wakeup or deadlock"), std::string::npos);
  // The shrunk trace is a short, printable reproduction recipe.
  EXPECT_LE(res.failing_trace.size(), 8u);
  EXPECT_NE(res.repro.find("replay with"), std::string::npos);
  EXPECT_NE(res.repro.find(check::to_string(res.failing_trace)),
            std::string::npos);

  // And it replays: the exact same schedule hits the exact same failure.
  EXPECT_THROW(explorer.replay(broken_barrier_attempt(), res.failing_trace),
               check::DeadlockError);
}

TEST(ScheduleExplorer, FindsLostUpdateRace) {
  // check-then-act increment: passes under coarse schedules, fails as soon
  // as both tasks are preempted between the read and the write.
  auto attempt = [](ult::Executor& ex) {
    int shared = 0;
    std::vector<int> pins{0, 1};
    ex.run(2, pins, [&](ult::TaskContext& ctx) {
      const int v = shared;
      ctx.sync_point("racy:read");
      shared = v + 1;
    });
    if (shared != 2) throw std::runtime_error("lost update: shared != 2");
  };
  check::ExploreOptions opts;
  opts.schedules = 100;
  check::ScheduleExplorer explorer(opts);
  const check::ExploreResult res = explorer.explore(attempt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("lost update"), std::string::npos);
  EXPECT_THROW(explorer.replay(attempt, res.failing_trace),
               std::runtime_error);
}

TEST(ScheduleExplorer, CorrectToyBarrierSurvivesExploration) {
  auto attempt = [](ult::Executor& ex) {
    ToyBarrier bar(3);
    std::atomic<int> done{0};
    std::vector<int> pins{0, 1, 2};
    ex.run(3, pins, [&](ult::TaskContext& ctx) {
      for (int round = 0; round < 3; ++round) bar.arrive(ctx);
      ++done;
    });
    if (done.load() != 3) throw std::runtime_error("not all tasks finished");
  };
  check::ExploreOptions opts;
  opts.schedules = 200;
  check::ScheduleExplorer explorer(opts);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
  EXPECT_EQ(res.schedules_run, 200);
}

// ---------- SyncManager under systematic exploration, all scopes ----------

namespace {

class CheckSyncSweep : public testing::TestWithParam<topo::ScopeSpec> {};

std::string sweep_name(const testing::TestParamInfo<topo::ScopeSpec>& info) {
  std::string s = topo::to_string(info.param);
  for (char& c : s) {
    if (c == '(' || c == ')') c = '_';
  }
  return s;
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(Scopes, CheckSyncSweep,
                         testing::Values(topo::node_scope(),
                                         topo::numa_scope(),
                                         topo::cache_scope(0),
                                         topo::core_scope()),
                         sweep_name);

TEST_P(CheckSyncSweep, SyncManagerSurvivesScheduleExploration) {
  // 2 sockets x 2 cores: 4 cpus, 2 LLC domains, so node-scope sync runs
  // the hierarchical (shared-cache-aware) path while cache/core run flat.
  const topo::ScopeSpec scope = GetParam();
  const int ntasks = 4;
  const int rounds = 2;

  auto attempt = [&](ult::Executor& ex) {
    topo::Machine m = topo::Machine::generic(2, 2);
    hls::Runtime rt(m, ntasks);
    check::HlsChecker checker(rt.scope_map(), ntasks);
    rt.sync().set_observer(&checker);
    hls::ModuleBuilder mb(rt.registry(), "mod");
    auto v = hls::add_var<int>(mb, "v", scope);
    mb.commit();
    const int ninstances = rt.scope_map().num_instances(scope);

    int singles = 0;
    int claims = 0;
    int bad = 0;
    run_tasks(rt, ntasks, ex, [&](hls::TaskView& view) {
      int& x = view.get(v);
      for (int round = 0; round < rounds; ++round) {
        view.barrier({v.handle()});
        view.single({v.handle()}, [&] {
          ++singles;
          x = round + 1;
        });
        if (x != round + 1) ++bad;
        if (view.single_nowait({v.handle()}, [] {})) ++claims;
      }
    });

    if (bad != 0) {
      throw std::runtime_error("single write not visible to all members");
    }
    if (singles != rounds * ninstances) {
      throw std::runtime_error(
          "single ran " + std::to_string(singles) + " times, expected " +
          std::to_string(rounds * ninstances));
    }
    if (claims != rounds * ninstances) {
      throw std::runtime_error(
          "nowait claimed " + std::to_string(claims) + " times, expected " +
          std::to_string(rounds * ninstances));
    }
    if (!checker.verify()) {
      throw std::runtime_error("checker violations:\n" + checker.report());
    }
  };

  check::ExploreOptions opts;
  opts.schedules = 500;
  check::ScheduleExplorer explorer(opts);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
  EXPECT_EQ(res.schedules_run, 500);
}

// ---------- lazy first touch under systematic exploration ----------

TEST(CheckStorage, FirstTouchRaceInitializesOnceUnderExploration) {
  // Both tasks race the lazy materialization of one module region on the
  // same (node) instance. The "storage:first-touch" sync point sits in the
  // race window between the failed fast path and the init lock, so the
  // explorer drives every interleaving of loser/winner through it. Under
  // all of them: exactly one initialization, one shared address, and no
  // task ever sees a partially initialized region.
  auto attempt = [](ult::Executor& ex) {
    topo::Machine m = topo::Machine::generic(1, 2);
    hls::Runtime rt(m, 2);
    int inits = 0;
    hls::ModuleBuilder mb(rt.registry(), "mod");
    auto v = hls::add_array<int>(mb, "v", 16, topo::node_scope(),
                                 [&inits](int* p, std::size_t n) {
                                   ++inits;
                                   for (std::size_t i = 0; i < n; ++i) {
                                     p[i] = static_cast<int>(i) + 1;
                                   }
                                 });
    mb.commit();
    void* ledger[2] = {nullptr, nullptr};
    run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
      int* p = view.get(v);
      ledger[view.context().task_id()] = p;
      if (p[0] != 1 || p[15] != 16) {
        throw std::runtime_error("partially initialized region observed");
      }
    });
    if (inits != 1) {
      throw std::runtime_error("init ran " + std::to_string(inits) +
                               " times, expected exactly 1");
    }
    if (ledger[0] != ledger[1]) {
      throw std::runtime_error("racing tasks resolved different addresses");
    }
  };
  check::ExploreOptions opts;
  opts.schedules = 300;
  check::ScheduleExplorer explorer(opts);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
  EXPECT_EQ(res.schedules_run, 300);
}

// ---------- lock-free barrier: lost-wakeup sweep ----------

namespace {

class FlatBarrierSweep : public testing::TestWithParam<bool> {};

}  // namespace

INSTANTIATE_TEST_SUITE_P(Paths, FlatBarrierSweep, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("forced_flat")
                                             : std::string("hierarchical");
                         });

TEST_P(FlatBarrierSweep, NoLostWakeupsAcrossSchedules) {
  // The sense-reversing barrier parks waiters on generation probes instead
  // of a condvar; a wrong sense snapshot or a dropped generation bump
  // shows up as a task spinning forever, which the executor's step budget
  // converts into a DeadlockError. 3 tasks on a 2-LLC machine give
  // asymmetric groups (2 + 1) so the hierarchical variant exercises the
  // held group episode; the forced-flat variant drives the same schedule
  // space through the single-word path.
  const bool force_flat = GetParam();
  auto attempt = [&](ult::Executor& ex) {
    topo::Machine m = topo::Machine::generic(2, 2);  // 4 cpus, 2 LLC domains
    hls::Runtime rt(m, 3);
    rt.sync().force_flat(force_flat);
    hls::ModuleBuilder mb(rt.registry(), "mod");
    auto v = hls::add_var<int>(mb, "v", topo::node_scope());
    mb.commit();
    int done = 0;
    int singles = 0;
    run_tasks(rt, 3, ex, [&](hls::TaskView& view) {
      view.get(v);
      for (int round = 0; round < 4; ++round) {
        view.barrier({v.handle()});
        // Alternate in a held episode (single keeps the barrier word
        // claimed across the block) to cover release-after-claim too.
        if (round % 2 == 1) {
          view.single({v.handle()}, [&] { ++singles; });
        }
      }
      ++done;
    });
    if (done != 3) throw std::runtime_error("not all tasks finished");
    if (singles != 2) {
      throw std::runtime_error("single ran " + std::to_string(singles) +
                               " times, expected 2");
    }
  };
  check::ExploreOptions opts;
  opts.schedules = 400;
  check::ScheduleExplorer explorer(opts);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
  EXPECT_EQ(res.schedules_run, 400);
}

// ---------- checker: synthetic violation streams ----------

namespace {

hls::SyncEvent ev(hls::SyncEvent::Kind kind, int task, int cpu,
                  hls::CanonicalScope scope, int inst, std::uint64_t tc,
                  std::uint64_t ic) {
  hls::SyncEvent e;
  e.kind = kind;
  e.task = task;
  e.cpu = cpu;
  e.scope = scope;
  e.instance = inst;
  e.task_count = tc;
  e.instance_count = ic;
  return e;
}

const hls::CanonicalScope kNode{topo::ScopeKind::node, 0};

bool has_code(const check::HlsChecker& c, check::Diagnostic::Code code) {
  for (const check::Diagnostic& d : c.violations()) {
    if (d.code == code) return true;
  }
  return false;
}

}  // namespace

TEST(HlsChecker, CleanSingleSequenceVerifies) {
  topo::Machine m = topo::Machine::generic(1, 2);
  topo::ScopeMap sm(m);
  check::HlsChecker c(sm, 2);
  using K = hls::SyncEvent::Kind;
  c.on_sync_event(ev(K::single_enter, 0, 0, kNode, 0, 0, 0));
  c.on_sync_event(ev(K::single_enter, 1, 1, kNode, 0, 0, 0));
  c.on_sync_event(ev(K::single_exec_begin, 1, 1, kNode, 0, 0, 0));
  c.on_sync_event(ev(K::single_exec_end, 1, 1, kNode, 0, 1, 1));
  c.on_sync_event(ev(K::single_exit, 0, 0, kNode, 0, 1, 1));
  EXPECT_TRUE(c.ok());
  EXPECT_TRUE(c.verify()) << c.report();
  EXPECT_EQ(c.events_recorded(), 5u);
}

TEST(HlsChecker, OverlappingExecutorsFlagged) {
  topo::Machine m = topo::Machine::generic(1, 2);
  topo::ScopeMap sm(m);
  check::HlsChecker c(sm, 2);
  using K = hls::SyncEvent::Kind;
  c.on_sync_event(ev(K::single_enter, 0, 0, kNode, 0, 0, 0));
  c.on_sync_event(ev(K::single_enter, 1, 1, kNode, 0, 0, 0));
  c.on_sync_event(ev(K::single_exec_begin, 0, 0, kNode, 0, 0, 0));
  // Second executor elected while the first still runs the block.
  c.on_sync_event(ev(K::single_exec_begin, 1, 1, kNode, 0, 0, 0));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_code(c, check::Diagnostic::Code::single_overlap));
  EXPECT_NE(c.report().find("single_overlap"), std::string::npos);
}

TEST(HlsChecker, PrematureElectionCaughtByHappensBefore) {
  // Two complete, non-overlapping-in-log single episodes whose participant
  // sets never met: only the vector-clock pass can tell they are
  // unordered (a lost arrival elected an executor too early).
  topo::Machine m = topo::Machine::generic(1, 2);
  topo::ScopeMap sm(m);
  check::HlsChecker c(sm, 2);
  using K = hls::SyncEvent::Kind;
  c.on_sync_event(ev(K::single_enter, 0, 0, kNode, 0, 0, 0));
  c.on_sync_event(ev(K::single_exec_begin, 0, 0, kNode, 0, 0, 0));
  c.on_sync_event(ev(K::single_exec_end, 0, 0, kNode, 0, 1, 1));
  c.on_sync_event(ev(K::single_enter, 1, 1, kNode, 0, 0, 1));
  c.on_sync_event(ev(K::single_exec_begin, 1, 1, kNode, 0, 0, 1));
  c.on_sync_event(ev(K::single_exec_end, 1, 1, kNode, 0, 1, 2));
  EXPECT_TRUE(c.ok());  // incremental checks cannot see this one
  EXPECT_FALSE(c.verify());
  EXPECT_TRUE(has_code(c, check::Diagnostic::Code::single_unordered));
}

TEST(HlsChecker, CounterRegressionFlagged) {
  topo::Machine m = topo::Machine::generic(1, 2);
  topo::ScopeMap sm(m);
  check::HlsChecker c(sm, 2);
  using K = hls::SyncEvent::Kind;
  c.on_sync_event(ev(K::barrier_exit, 0, 0, kNode, 0, 2, 2));
  c.on_sync_event(ev(K::barrier_exit, 0, 0, kNode, 0, 1, 2));  // task count back
  c.on_sync_event(ev(K::barrier_exit, 1, 1, kNode, 0, 1, 2));
  c.on_sync_event(ev(K::barrier_exit, 1, 1, kNode, 0, 2, 1));  // inst count back
  EXPECT_FALSE(c.ok());
  const auto v = c.violations();
  int regressions = 0;
  for (const check::Diagnostic& d : v) {
    if (d.code == check::Diagnostic::Code::counter_regression) ++regressions;
  }
  EXPECT_EQ(regressions, 2);
}

TEST(HlsChecker, MigrateInsideSingleFlagged) {
  topo::Machine m = topo::Machine::generic(1, 2);
  topo::ScopeMap sm(m);
  check::HlsChecker c(sm, 2);
  using K = hls::SyncEvent::Kind;
  c.on_sync_event(ev(K::single_enter, 0, 0, kNode, 0, 0, 0));
  c.on_sync_event(ev(K::single_exec_begin, 0, 0, kNode, 0, 0, 0));
  c.on_sync_event(ev(K::migrate_ok, 0, 1, kNode, -1, 0, 0));
  EXPECT_TRUE(has_code(c, check::Diagnostic::Code::migrate_in_single));
}

TEST(HlsChecker, MigrateWithMismatchedCountersFlagged) {
  // Destination numa instance provably completed 3 episodes; a task that
  // completed none is accepted there anyway -> the checker's mirror of the
  // §IV.A condition must fire.
  topo::Machine m = topo::Machine::nehalem_ex(2);
  topo::ScopeMap sm(m);
  check::HlsChecker c(sm, 4);
  const hls::CanonicalScope numa{topo::ScopeKind::numa, 0};
  const int dest_cpu = 8;  // numa instance 1
  ASSERT_EQ(sm.instance_of(topo::numa_scope(), dest_cpu), 1);
  using K = hls::SyncEvent::Kind;
  c.on_sync_event(ev(K::barrier_exit, 1, dest_cpu, numa, 1, 3, 3));
  c.on_sync_event(ev(K::migrate_ok, 0, dest_cpu, kNode, -1, 0, 0));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_code(c, check::Diagnostic::Code::migrate_mismatch));
  // A matching move to the same instance is fine.
  check::HlsChecker c2(sm, 4);
  c2.on_sync_event(ev(K::barrier_exit, 1, dest_cpu, numa, 1, 3, 3));
  c2.on_sync_event(ev(K::barrier_exit, 0, 0, numa, 0, 3, 3));
  c2.on_sync_event(ev(K::migrate_ok, 0, dest_cpu, kNode, -1, 0, 0));
  EXPECT_TRUE(c2.ok()) << c2.report();
}

TEST(HlsChecker, StructuralNoiseFlagged) {
  topo::Machine m = topo::Machine::generic(1, 2);
  topo::ScopeMap sm(m);
  check::HlsChecker c(sm, 2);
  using K = hls::SyncEvent::Kind;
  c.on_sync_event(ev(K::single_exec_end, 0, 0, kNode, 0, 1, 1));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_code(c, check::Diagnostic::Code::structural));
}

// ---------- checker attached to a live run on kernel threads ----------

TEST(HlsChecker, CleanThreadedRunVerifies) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  const int ntasks = 8;
  hls::Runtime rt(m, ntasks);
  check::HlsChecker checker(rt.scope_map(), ntasks);
  rt.sync().set_observer(&checker);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  mb.commit();
  ult::ThreadExecutor ex;
  run_tasks(rt, ntasks, ex, [&](hls::TaskView& view) {
    view.get(v);
    for (int round = 0; round < 5; ++round) {
      view.barrier({v.handle()});
      view.single({v.handle()}, [] {});
      view.single_nowait({v.handle()}, [] {});
    }
  });
  rt.sync().set_observer(nullptr);
  EXPECT_GT(checker.events_recorded(), 0u);
  EXPECT_TRUE(checker.verify()) << checker.report();
}
