#include <gtest/gtest.h>

#include "pragma/lexer.hpp"
#include "pragma/parser.hpp"
#include "pragma/rewriter.hpp"

namespace pr = hlsmpc::pragma;
namespace topo = hlsmpc::topo;

// ---- lexer ----

TEST(PragmaLexer, TokenizesPragmaLine) {
  const auto toks = pr::tokenize("#pragma hls node(a, b) level(2)");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].text, "#");
  EXPECT_EQ(toks[1].text, "pragma");
  EXPECT_EQ(toks[2].text, "hls");
  EXPECT_EQ(toks[3].text, "node");
}

TEST(PragmaLexer, DetectsHlsPragmas) {
  EXPECT_TRUE(pr::is_hls_pragma("#pragma hls node(a)"));
  EXPECT_TRUE(pr::is_hls_pragma("   #pragma hls single(x) nowait"));
  EXPECT_FALSE(pr::is_hls_pragma("#pragma omp parallel"));
  EXPECT_FALSE(pr::is_hls_pragma("int a;"));
  EXPECT_FALSE(pr::is_hls_pragma("// #pragma hls node(a)"));
}

TEST(PragmaLexer, StripNoncodeMasksStringsAndComments) {
  bool block = false;
  EXPECT_FALSE(pr::contains_identifier(
      pr::strip_noncode("printf(\"a is %d\", x); // uses a?", block), "a"));
  EXPECT_TRUE(pr::contains_identifier(
      pr::strip_noncode("f(a); /* a in comment */", block), "a"));
  block = false;
  std::string l1 = pr::strip_noncode("/* start", block);
  EXPECT_TRUE(block);
  std::string l2 = pr::strip_noncode("a inside */ b", block);
  EXPECT_FALSE(block);
  EXPECT_FALSE(pr::contains_identifier(l2, "a"));
  EXPECT_TRUE(pr::contains_identifier(l2, "b"));
}

TEST(PragmaLexer, IdentifierWordBoundaries) {
  EXPECT_TRUE(pr::contains_identifier("x = a + 1;", "a"));
  EXPECT_FALSE(pr::contains_identifier("x = ab + 1;", "a"));
  EXPECT_FALSE(pr::contains_identifier("x = ba;", "a"));
  EXPECT_EQ(pr::replace_identifier("a = a + ab;", "a", "(*p)"),
            "(*p) = (*p) + ab;");
}

// ---- parser ----

TEST(PragmaParser, ParsesScopeDirectives) {
  const std::string src = R"(
int a;
double table[100];
#pragma hls node(a)
#pragma hls cache(table) level(2)
)";
  const auto result = pr::parse(src);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.variables.size(), 2u);
  EXPECT_EQ(result.variables[0].name, "a");
  EXPECT_EQ(result.variables[0].scope, topo::node_scope());
  EXPECT_EQ(result.variables[1].name, "table");
  EXPECT_EQ(result.variables[1].scope, topo::cache_scope(2));
  EXPECT_TRUE(result.variables[1].is_array);
  EXPECT_EQ(result.variables[1].decl_type, "double");
}

TEST(PragmaParser, ParsesSingleAndBarrier) {
  const std::string src = R"(
int a, b;
#pragma hls node(a)
#pragma hls node(b)
void f() {
#pragma hls single(a) nowait
  { a = 1; }
#pragma hls barrier(a, b)
}
)";
  const auto result = pr::parse(src);
  EXPECT_TRUE(result.ok()) << result.diagnostics.size();
  ASSERT_EQ(result.directives.size(), 4u);
  EXPECT_EQ(result.directives[2].kind, pr::DirectiveKind::single);
  EXPECT_TRUE(result.directives[2].nowait);
  EXPECT_EQ(result.directives[3].kind, pr::DirectiveKind::barrier);
  EXPECT_EQ(result.directives[3].vars,
            (std::vector<std::string>{"a", "b"}));
}

TEST(PragmaParser, RejectsNonGlobal) {
  const auto result = pr::parse("#pragma hls node(ghost)\n");
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_NE(result.diagnostics[0].message.find("not a declared global"),
            std::string::npos);
}

TEST(PragmaParser, RejectsAlreadyAccessedVariable) {
  // The threadprivate-style rule: the variable must not have been used
  // before its HLS directive (paper §II.B.1).
  const std::string src = R"(
int a;
int b = a + 1;
#pragma hls node(a)
)";
  const auto result = pr::parse(src);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.diagnostics[0].message.find("already accessed"),
            std::string::npos);
}

TEST(PragmaParser, RejectsMixedScopeSingle) {
  const std::string src = R"(
int a, b;
#pragma hls node(a)
#pragma hls numa(b)
#pragma hls single(a, b)
{ }
)";
  const auto result = pr::parse(src);
  EXPECT_FALSE(result.ok());
  bool found = false;
  for (const auto& d : result.diagnostics) {
    if (d.message.find("share one scope") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PragmaParser, RejectsSingleOnNonHlsVar) {
  const std::string src = R"(
int a;
#pragma hls single(a)
{ }
)";
  const auto result = pr::parse(src);
  EXPECT_FALSE(result.ok());
}

TEST(PragmaParser, RejectsMalformedSyntax) {
  EXPECT_FALSE(pr::parse("int a;\n#pragma hls node(a\n").ok());
  EXPECT_FALSE(pr::parse("int a;\n#pragma hls node()\n").ok());
  EXPECT_FALSE(pr::parse("int a;\n#pragma hls banana(a)\n").ok());
  EXPECT_FALSE(pr::parse("int a;\n#pragma hls node(a) nowait\n").ok());
  EXPECT_FALSE(pr::parse("int a;\n#pragma hls node(a) bogus\n").ok());
}

TEST(PragmaParser, DoubleHlsRejected) {
  const std::string src = R"(
int a;
#pragma hls node(a)
#pragma hls numa(a)
)";
  EXPECT_FALSE(pr::parse(src).ok());
}

TEST(PragmaParser, WidestScopeOrder) {
  EXPECT_EQ(pr::widest_scope({topo::core_scope(), topo::node_scope()}),
            topo::node_scope());
  EXPECT_EQ(pr::widest_scope({topo::cache_scope(1), topo::cache_scope(2)}),
            topo::cache_scope(2));
  EXPECT_EQ(pr::widest_scope({topo::cache_scope(0), topo::cache_scope(3)}),
            topo::cache_scope(0));  // llc wins over explicit levels
  EXPECT_EQ(pr::widest_scope({topo::numa_scope(), topo::cache_scope(0)}),
            topo::numa_scope());
}

// ---- rewriter ----

TEST(PragmaRewriter, StripModePreservesCode) {
  // "a compiler unaware of these directives can ignore them and should
  // generate a correct code" (§II.C).
  const std::string src =
      "int a;\n#pragma hls node(a)\nint main() {\n  a = 3;\n  return a;\n}";
  const auto result = pr::rewrite(src, pr::RewriteMode::strip);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.text,
            "int a;\nint main() {\n  a = 3;\n  return a;\n}");
}

TEST(PragmaRewriter, TranslatesUsesToPointerIndirection) {
  // The paper's §IV.A example: a = 3  =>  *ptr_a = 3.
  const std::string src =
      "int a;\n#pragma hls node(a)\nvoid f() {\n  a = 3;\n}";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.text.find("int *ptr_a;"), std::string::npos);
  EXPECT_NE(result.text.find(
                "ptr_a = (int *)hls_get_addr_node(HLS_MOD_main, HLS_OFF_a);"),
            std::string::npos);
  EXPECT_NE(result.text.find("(*ptr_a) = 3;"), std::string::npos);
}

TEST(PragmaRewriter, TranslatesSingleToIfSingleDone) {
  // The paper's §IV.B example shape.
  const std::string src = R"(int a;
#pragma hls node(a)
void f() {
#pragma hls single(a)
  {
    g(&a);
  }
}
)";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.text.find("if (hls_single(node)) {"), std::string::npos);
  EXPECT_NE(result.text.find("g(&(*ptr_a));"), std::string::npos);
  EXPECT_NE(result.text.find("hls_single_done(node);"), std::string::npos);
}

TEST(PragmaRewriter, SingleNowaitHasNoDone) {
  const std::string src = R"(int a;
#pragma hls node(a)
void f() {
#pragma hls single(a) nowait
  {
    a = 4;
  }
}
)";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.text.find("if (hls_single_nowait(node)) {"),
            std::string::npos);
  EXPECT_EQ(result.text.find("hls_single_done"), std::string::npos);
}

TEST(PragmaRewriter, BarrierUsesWidestScope) {
  const std::string src = R"(int a, b;
#pragma hls numa(a)
#pragma hls node(b)
void f() {
#pragma hls barrier(a, b)
}
)";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.text.find("hls_barrier(node);"), std::string::npos);
}

TEST(PragmaRewriter, ArrayUsesArePointerCompatible) {
  const std::string src = R"(double table[1024];
#pragma hls node(table)
void f() {
  double x = table[3];
}
)";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.text.find("double *ptr_table;"), std::string::npos);
  EXPECT_NE(result.text.find("(ptr_table)[3]"), std::string::npos);
}

TEST(PragmaRewriter, Listing1Translates) {
  // Listing 1 of the paper: two scoped variables, each written inside its
  // own blocking single.
  const std::string src = R"(int a, b;
#pragma hls node(a)
#pragma hls numa(b)
void f() {
#pragma hls single(a)
  {
    a = 4;
  }
#pragma hls single(b)
  {
    b = 2;
  }
}
)";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.text.find("if (hls_single(node)) {"), std::string::npos);
  EXPECT_NE(result.text.find("if (hls_single(numa)) {"), std::string::npos);
  EXPECT_NE(result.text.find("(*ptr_a) = 4;"), std::string::npos);
  EXPECT_NE(result.text.find("(*ptr_b) = 2;"), std::string::npos);
  EXPECT_NE(result.text.find("hls_single_done(node);"), std::string::npos);
  EXPECT_NE(result.text.find("hls_single_done(numa);"), std::string::npos);
}

TEST(PragmaRewriter, Listing2Translates) {
  // Listing 2: nowait singles bracketed by two explicit barriers — half
  // the synchronizations of listing 1.
  const std::string src = R"(int a, b;
#pragma hls node(a)
#pragma hls numa(b)
void f() {
#pragma hls barrier(a, b)
#pragma hls single(a) nowait
  {
    a = 4;
  }
#pragma hls single(b) nowait
  {
    b = 2;
  }
#pragma hls barrier(a, b)
}
)";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  // barrier(a: node, b: numa) synchronizes the largest scope: node.
  const std::string barrier_call = "hls_barrier(node);";
  const std::size_t first = result.text.find(barrier_call);
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(result.text.find(barrier_call, first + 1), std::string::npos)
      << "both explicit barriers must survive";
  EXPECT_NE(result.text.find("if (hls_single_nowait(node)) {"),
            std::string::npos);
  EXPECT_NE(result.text.find("if (hls_single_nowait(numa)) {"),
            std::string::npos);
  EXPECT_EQ(result.text.find("hls_single_done"), std::string::npos);
}

TEST(PragmaRewriter, CacheLevelScopeSpelledOut) {
  const std::string src = R"(int v;
#pragma hls cache(v) level(2)
void f() {
  v = 1;
}
)";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.text.find("hls_get_addr_cache_l2("), std::string::npos);
}

TEST(PragmaRewriter, IdentifiersInsideStringsUntouched) {
  const std::string src = "int a;\n#pragma hls node(a)\nvoid f() {\n"
                          "  printf(\"a = %d\", a);\n}";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.text.find("printf(\"a = %d\", (*ptr_a));"),
            std::string::npos);
}

TEST(PragmaRewriter, ErrorsBlockRewrite) {
  const auto result = pr::rewrite("#pragma hls node(nope)\n");
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.text.empty());
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST(PragmaRewriter, Listing3ShapeTranslates) {
  // Condensed listing 3 of the paper.
  const std::string src = R"(double table[1024];
#pragma hls node(table)
int main() {
#pragma hls single(table)
  {
    load_table(table);
  }
  compute(table);
  return 0;
}
)";
  const auto result = pr::rewrite(src);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.text.find("if (hls_single(node)) {"), std::string::npos);
  EXPECT_NE(result.text.find("load_table((ptr_table));"), std::string::npos);
  EXPECT_NE(result.text.find("compute((ptr_table));"), std::string::npos);
}
