// Integration tests: the paper's benchmarks and mini-apps on the runtime.
#include <gtest/gtest.h>

#include <cctype>

#include "apps/eulermhd/eulermhd.hpp"
#include "apps/gadget/gadget.hpp"
#include "apps/matmul/matmul.hpp"
#include "apps/meshupdate/mesh_update.hpp"
#include "apps/tachyon/tachyon.hpp"

namespace apps = hlsmpc::apps;
namespace mpc = hlsmpc::mpc;
namespace topo = hlsmpc::topo;
using hlsmpc::memtrack::Category;

namespace {

mpc::NodeOptions node_opts(int nranks) {
  mpc::NodeOptions o;
  o.mpi.nranks = nranks;
  return o;
}

}  // namespace

// ---- mesh update ----

TEST(MeshUpdateApp, ChecksumIdenticalAcrossModes) {
  // HLS must preserve the program's semantics (paper §II.C): the mesh
  // result cannot depend on whether the table is shared.
  apps::meshupdate::Config cfg;
  cfg.cells_per_task = 512;
  cfg.table_cells = 1024;
  cfg.timesteps = 3;
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  double checksums[3];
  int i = 0;
  for (auto mode : {apps::meshupdate::Mode::no_hls,
                    apps::meshupdate::Mode::hls_node,
                    apps::meshupdate::Mode::hls_numa}) {
    cfg.mode = mode;
    mpc::Node node(m, node_opts(16));
    checksums[i++] = apps::meshupdate::run_on_node(node, cfg);
  }
  EXPECT_DOUBLE_EQ(checksums[0], checksums[1]);
  EXPECT_DOUBLE_EQ(checksums[0], checksums[2]);
}

TEST(MeshUpdateApp, UpdateVariantChecksumsMatchToo) {
  apps::meshupdate::Config cfg;
  cfg.cells_per_task = 256;
  cfg.table_cells = 512;
  cfg.timesteps = 3;
  cfg.update_table = true;
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  cfg.mode = apps::meshupdate::Mode::no_hls;
  mpc::Node a(m, node_opts(16));
  const double base = apps::meshupdate::run_on_node(a, cfg);
  cfg.mode = apps::meshupdate::Mode::hls_node;
  mpc::Node b(m, node_opts(16));
  EXPECT_DOUBLE_EQ(apps::meshupdate::run_on_node(b, cfg), base);
}

TEST(MeshUpdateApp, HlsReducesTableMemory) {
  apps::meshupdate::Config cfg;
  cfg.cells_per_task = 128;
  cfg.table_cells = 4096;
  cfg.timesteps = 1;
  const topo::Machine m = topo::Machine::nehalem_ex(1);

  cfg.mode = apps::meshupdate::Mode::no_hls;
  mpc::Node priv(m, node_opts(8));
  apps::meshupdate::run_on_node(priv, cfg);
  const auto app_peak = priv.tracker().peak_total();

  cfg.mode = apps::meshupdate::Mode::hls_node;
  mpc::Node shared(m, node_opts(8));
  apps::meshupdate::run_on_node(shared, cfg);
  const auto hls_peak = shared.tracker().peak_total();

  // 8 table copies -> 1: the HLS node must peak well below the private
  // one (7 x 32 KB difference here, against small fixed overheads).
  EXPECT_LT(hls_peak + 6 * 4096 * sizeof(double), app_peak);
}

TEST(MeshUpdateApp, SimulationShowsTableIEfficiencyOrdering) {
  // Scaled-down Table I shape on 2 sockets: no-HLS must be clearly less
  // efficient than both HLS scopes.
  const topo::Machine m = topo::Machine::nehalem_ex(2, /*divisor=*/64);
  apps::meshupdate::Config cfg;
  cfg.cells_per_task = 4096;           // 32 KB per task
  cfg.table_cells = 16384;             // 128 KB table vs 288 KB LLC
  cfg.timesteps = 2;
  cfg.mode = apps::meshupdate::Mode::no_hls;
  const auto no_hls = apps::meshupdate::simulate(m, cfg, 16);
  cfg.mode = apps::meshupdate::Mode::hls_node;
  const auto node = apps::meshupdate::simulate(m, cfg, 16);
  cfg.mode = apps::meshupdate::Mode::hls_numa;
  const auto numa = apps::meshupdate::simulate(m, cfg, 16);

  EXPECT_LT(no_hls.efficiency, node.efficiency);
  EXPECT_LT(no_hls.efficiency, numa.efficiency);
  EXPECT_GT(node.efficiency, 0.5);
  EXPECT_LT(no_hls.efficiency, 0.7);
}

TEST(MeshUpdateApp, UpdateVariantFavoursNumaOverNode) {
  // Table I's update columns: writer invalidation hurts the node scope,
  // the numa scope keeps one valid copy per socket.
  const topo::Machine m = topo::Machine::nehalem_ex(2, /*divisor=*/64);
  apps::meshupdate::Config cfg;
  cfg.cells_per_task = 2048;
  cfg.table_cells = 8192;  // fits one LLC: invalidation is the only cost
  cfg.timesteps = 4;
  cfg.update_table = true;
  cfg.mode = apps::meshupdate::Mode::hls_node;
  const auto node = apps::meshupdate::simulate(m, cfg, 16);
  cfg.mode = apps::meshupdate::Mode::hls_numa;
  const auto numa = apps::meshupdate::simulate(m, cfg, 16);
  EXPECT_GE(numa.efficiency, node.efficiency);
}

// Property sweep: every scope mode preserves semantics and materializes
// exactly the scope's instance count of table copies.
namespace {
struct ModeCase {
  apps::meshupdate::Mode mode;
  int expected_copies;  // on nehalem_ex(2) with 16 tasks
  bool update;
};
std::string mode_case_name(const testing::TestParamInfo<ModeCase>& info) {
  std::string s = to_string(info.param.mode);
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s + (info.param.update ? "_upd" : "_const");
}
}  // namespace

class MeshModeSweep : public testing::TestWithParam<ModeCase> {};

INSTANTIATE_TEST_SUITE_P(
    Modes, MeshModeSweep,
    testing::Values(
        ModeCase{apps::meshupdate::Mode::hls_node, 1, false},
        ModeCase{apps::meshupdate::Mode::hls_numa, 2, false},
        ModeCase{apps::meshupdate::Mode::hls_cache_llc, 2, false},
        ModeCase{apps::meshupdate::Mode::hls_core, 16, false},
        ModeCase{apps::meshupdate::Mode::hls_node, 1, true},
        ModeCase{apps::meshupdate::Mode::hls_numa, 2, true}),
    mode_case_name);

TEST_P(MeshModeSweep, ChecksumMatchesBaselineAndCopiesMatchScope) {
  const ModeCase param = GetParam();
  apps::meshupdate::Config cfg;
  cfg.cells_per_task = 128;
  cfg.table_cells = 256;
  cfg.timesteps = 2;
  cfg.update_table = param.update;
  const topo::Machine m = topo::Machine::nehalem_ex(2);

  cfg.mode = apps::meshupdate::Mode::no_hls;
  mpc::Node base_node(m, node_opts(16));
  const double base = apps::meshupdate::run_on_node(base_node, cfg);

  cfg.mode = param.mode;
  mpc::Node node(m, node_opts(16));
  const double got = apps::meshupdate::run_on_node(node, cfg);
  EXPECT_DOUBLE_EQ(got, base);

  // One table copy per scope instance actually materialized.
  const auto& reg = node.hls_rt().registry();
  ASSERT_EQ(reg.num_modules(), 1);
  const auto& mod = reg.module(0);
  ASSERT_EQ(mod.vars.size(), 1u);
  EXPECT_EQ(node.hls_rt().storage().copies(mod.vars[0].canonical, 0),
            param.expected_copies);
}

// ---- matmul ----

TEST(MatmulApp, ChecksumIdenticalAcrossModes) {
  apps::matmul::Config cfg;
  cfg.n = 32;
  cfg.block = 8;
  cfg.timesteps = 2;
  const topo::Machine m = topo::Machine::nehalem_ex(1);
  double base = 0;
  bool first = true;
  for (auto mode : {apps::matmul::Mode::mpi_private,
                    apps::matmul::Mode::hls_node,
                    apps::matmul::Mode::hls_numa}) {
    mpc::Node node(m, node_opts(8));
    const double c = apps::matmul::run_on_node(node, cfg, mode);
    if (first) {
      base = c;
      first = false;
    } else {
      EXPECT_DOUBLE_EQ(c, base) << to_string(mode);
    }
  }
}

TEST(MatmulApp, UpdateVariantChecksumsMatch) {
  apps::matmul::Config cfg;
  cfg.n = 24;
  cfg.block = 8;
  cfg.timesteps = 3;
  cfg.update_b = true;
  const topo::Machine m = topo::Machine::nehalem_ex(1);
  mpc::Node a(m, node_opts(4));
  const double base =
      apps::matmul::run_on_node(a, cfg, apps::matmul::Mode::mpi_private);
  mpc::Node b(m, node_opts(4));
  EXPECT_DOUBLE_EQ(
      apps::matmul::run_on_node(b, cfg, apps::matmul::Mode::hls_node), base);
}

TEST(MatmulApp, BlockedDgemmIsCorrect) {
  // Reference check of the kernel itself on one rank against the naive
  // triple loop done by hand here.
  apps::matmul::Config cfg;
  cfg.n = 16;
  cfg.block = 8;
  cfg.timesteps = 1;
  const topo::Machine m = topo::Machine::nehalem_ex(1);
  mpc::Node node(m, node_opts(1));
  const double got =
      apps::matmul::run_on_node(node, cfg, apps::matmul::Mode::mpi_private);
  // Reference: same deterministic fill.
  const int n = cfg.n;
  std::vector<double> A(static_cast<std::size_t>(n) * n),
      B(A.size()), C(A.size(), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      A[static_cast<std::size_t>(i) * n + j] = 0.125 * ((i * 13 + j * 5) % 8);
      B[static_cast<std::size_t>(i) * n + j] =
          0.25 * ((i * 31 + j * 17) % 16 - 8);
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        C[static_cast<std::size_t>(i) * n + j] +=
            A[static_cast<std::size_t>(i) * n + k] *
            B[static_cast<std::size_t>(k) * n + j];
      }
    }
  }
  double want = 0;
  for (double v : C) want += v;
  EXPECT_NEAR(got, want, 1e-9);
}

TEST(MatmulApp, SimulatedPerformanceOrdering) {
  // Figure 3's mid-range shape: sequential >= HLS > plain MPI when the
  // duplicated working set overflows the LLC but the shared one fits.
  const topo::Machine m = topo::Machine::nehalem_ex(2, /*divisor=*/64);
  apps::matmul::Config cfg;
  cfg.n = 64;  // 32 KB per matrix; 8 tasks x 3 > 288 KB LLC, shared B helps
  cfg.block = 8;
  cfg.timesteps = 3;
  const auto seq =
      apps::matmul::simulate(m, cfg, apps::matmul::Mode::sequential, 1);
  const auto mpi =
      apps::matmul::simulate(m, cfg, apps::matmul::Mode::mpi_private, 16);
  const auto node =
      apps::matmul::simulate(m, cfg, apps::matmul::Mode::hls_node, 16);
  EXPECT_GT(seq.perf, mpi.perf);
  EXPECT_GT(node.perf, mpi.perf);
}

// ---- eulermhd ----

TEST(EulerMhdApp, ChecksumStableAcrossModes) {
  apps::eulermhd::Config cfg;
  cfg.global_nx = 64;
  cfg.global_ny = 64;
  cfg.eos_dim = 32;
  cfg.timesteps = 2;
  cfg.total_ranks = 32;  // 2 rows per rank at 8 local ranks
  const topo::Machine m = topo::Machine::core2_cluster_node();
  cfg.use_hls = false;
  mpc::Node a(m, node_opts(8));
  const auto base = apps::eulermhd::run(a, cfg);
  cfg.use_hls = true;
  mpc::Node b(m, node_opts(8));
  const auto hls = apps::eulermhd::run(b, cfg);
  EXPECT_DOUBLE_EQ(hls.checksum, base.checksum);
  EXPECT_GT(base.checksum, 0.0);
}

TEST(EulerMhdApp, HlsSavesSevenTableCopies) {
  apps::eulermhd::Config cfg;
  cfg.global_nx = 32;
  cfg.global_ny = 32;
  cfg.eos_dim = 64;  // 32 KB table
  cfg.timesteps = 1;
  cfg.total_ranks = 32;
  const topo::Machine m = topo::Machine::core2_cluster_node();
  cfg.use_hls = false;
  mpc::Node a(m, node_opts(8));
  const auto priv = apps::eulermhd::run(a, cfg);
  cfg.use_hls = true;
  mpc::Node b(m, node_opts(8));
  const auto hls = apps::eulermhd::run(b, cfg);
  const double table_mb = 64.0 * 64.0 * sizeof(double) / (1 << 20);
  // Expected gain ~ 7 x table (paper §V.B.1); allow generous slack.
  EXPECT_NEAR(priv.avg_mb - hls.avg_mb, 7 * table_mb, table_mb);
}

// ---- gadget ----

TEST(GadgetApp, ChecksumStableAcrossModes) {
  apps::gadget::Config cfg;
  cfg.particles_per_rank = 128;
  cfg.ewald_dim = 8;
  cfg.timesteps = 2;
  const topo::Machine m = topo::Machine::core2_cluster_node();
  cfg.use_hls = false;
  mpc::Node a(m, node_opts(8));
  const auto base = apps::gadget::run(a, cfg);
  cfg.use_hls = true;
  mpc::Node b(m, node_opts(8));
  const auto hls = apps::gadget::run(b, cfg);
  EXPECT_DOUBLE_EQ(hls.checksum, base.checksum);
}

TEST(GadgetApp, HlsReducesEwaldTableMemory) {
  apps::gadget::Config cfg;
  cfg.particles_per_rank = 64;
  cfg.ewald_dim = 24;  // 24^3 doubles = 108 KB
  cfg.timesteps = 1;
  const topo::Machine m = topo::Machine::core2_cluster_node();
  cfg.use_hls = false;
  mpc::Node a(m, node_opts(8));
  const auto priv = apps::gadget::run(a, cfg);
  cfg.use_hls = true;
  mpc::Node b(m, node_opts(8));
  const auto hls = apps::gadget::run(b, cfg);
  EXPECT_LT(hls.avg_mb, priv.avg_mb);
}

// ---- tachyon ----

TEST(TachyonApp, ChecksumStableAcrossModes) {
  apps::tachyon::Config cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.num_spheres = 8;
  cfg.texture_floats = 4096;
  cfg.frames = 2;
  const topo::Machine m = topo::Machine::core2_cluster_node();
  cfg.use_hls = false;
  mpc::Node a(m, node_opts(8));
  const auto base = apps::tachyon::run(a, cfg);
  cfg.use_hls = true;
  mpc::Node b(m, node_opts(8));
  const auto hls = apps::tachyon::run(b, cfg);
  EXPECT_DOUBLE_EQ(hls.checksum, base.checksum);
  EXPECT_NE(base.checksum, 0.0);
}

TEST(TachyonApp, HlsElidesIntraNodeGatherCopies) {
  // The paper's §V.B.3 observation: with the shared image, task 0's
  // receives from local tasks carry identical source/destination and the
  // runtime skips the copies.
  apps::tachyon::Config cfg;
  // Row chunks must exceed the eager threshold so the gather uses the
  // rendezvous path, where the sender's buffer is live and the
  // same-address copy can be skipped (as for the paper's 23 MB chunks).
  cfg.width = 128;
  cfg.height = 128;
  cfg.frames = 3;
  const topo::Machine m = topo::Machine::core2_cluster_node();
  cfg.use_hls = false;
  mpc::Node a(m, node_opts(8));
  const auto priv = apps::tachyon::run(a, cfg);
  EXPECT_EQ(priv.gather_copies_elided, 0u);
  cfg.use_hls = true;
  mpc::Node b(m, node_opts(8));
  const auto hls = apps::tachyon::run(b, cfg);
  EXPECT_EQ(hls.gather_copies_elided, 3u * 7u);  // frames x local senders
}

TEST(TachyonApp, HlsSharesSceneAndImage) {
  apps::tachyon::Config cfg;
  cfg.width = 96;
  cfg.height = 96;
  cfg.texture_floats = 1 << 16;  // 256 KB textures
  cfg.frames = 1;
  const topo::Machine m = topo::Machine::core2_cluster_node();
  cfg.use_hls = false;
  mpc::Node a(m, node_opts(8));
  const auto priv = apps::tachyon::run(a, cfg);
  cfg.use_hls = true;
  mpc::Node b(m, node_opts(8));
  const auto hls = apps::tachyon::run(b, cfg);
  // scene + image replicated 8x vs once.
  EXPECT_LT(hls.max_mb * 2, priv.max_mb);
}
