// Cross-module integration tests:
//  - pragma-translated sources drive the same runtime call sequence the
//    C++ API produces;
//  - thread and fiber executors produce identical application results;
//  - the full Node (MPI + HLS) composes with migration;
//  - misuse across module boundaries is diagnosed.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "apps/meshupdate/mesh_update.hpp"
#include "mpc/node.hpp"
#include "pragma/rewriter.hpp"

namespace mpc = hlsmpc::mpc;
namespace topo = hlsmpc::topo;
namespace hls = hlsmpc::hls;
namespace mpi = hlsmpc::mpi;
namespace pragma = hlsmpc::pragma;

namespace {

/// Tiny interpreter for the translated pragma calls: executes the calls
/// the rewriter emits (hls_single / hls_single_done / hls_barrier /
/// hls_get_addr_<scope>) against a real hls::Runtime, proving the
/// compiler half and the runtime half fit together.
struct TranslatedCallRunner {
  hls::Runtime* rt;
  hls::VarHandle var;

  void run_listing3(hls::TaskView& view, std::atomic<int>& loads,
                    std::atomic<int>& bad) {
    // if (hls_single(node)) { load_table(ptr_table); hls_single_done(node); }
    auto* table = static_cast<double*>(
        view.runtime().get_addr(var, view.context()));
    if (view.runtime().single_enter_scope(var.scope, view.context())) {
      ++loads;
      for (int i = 0; i < 64; ++i) table[i] = i;
      view.runtime().single_done_scope(var.scope, view.context());
    }
    // compute(ptr_table);
    if (table[63] != 63) ++bad;
    // hls_barrier(node);
    view.runtime().barrier_scope(var.scope, view.context());
  }
};

}  // namespace

TEST(Integration, TranslatedListing3DrivesRuntimeCorrectly) {
  // 1. Translate the paper's listing 3 shape and verify the call shapes.
  const std::string src = R"(double table[64];
#pragma hls node(table)
int main() {
#pragma hls single(table)
  {
    load_table(table);
  }
  compute(table);
#pragma hls barrier(table)
  return 0;
}
)";
  const auto rewritten = pragma::rewrite(src);
  ASSERT_TRUE(rewritten.ok);
  ASSERT_EQ(rewritten.variables.size(), 1u);
  EXPECT_NE(rewritten.text.find("if (hls_single(node))"), std::string::npos);
  EXPECT_NE(rewritten.text.find("hls_barrier(node);"), std::string::npos);

  // 2. Execute the exact emitted call sequence on the runtime.
  const topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 8);
  hls::ModuleBuilder mb(rt.registry(), "main");
  hls::VarHandle table =
      mb.add_raw("table", rewritten.variables[0].scope, 64 * sizeof(double),
                 alignof(double), {});
  mb.commit();

  std::atomic<int> loads{0}, bad{0};
  hlsmpc::ult::ThreadExecutor ex;
  std::vector<int> pins(8);
  std::iota(pins.begin(), pins.end(), 0);
  ex.run(8, pins, [&](hlsmpc::ult::TaskContext& ctx) {
    hls::TaskView view(rt, ctx);
    TranslatedCallRunner runner{&rt, table};
    runner.run_listing3(view, loads, bad);
  });
  EXPECT_EQ(loads.load(), 1);  // one load per node, as in the paper
  EXPECT_EQ(bad.load(), 0);
}

TEST(Integration, ThreadAndFiberBackendsAgreeOnAppResults) {
  hlsmpc::apps::meshupdate::Config cfg;
  cfg.cells_per_task = 256;
  cfg.table_cells = 512;
  cfg.timesteps = 2;
  cfg.mode = hlsmpc::apps::meshupdate::Mode::hls_node;
  const topo::Machine m = topo::Machine::nehalem_ex(1);

  mpc::NodeOptions thread_opts;
  thread_opts.mpi.nranks = 8;
  thread_opts.mpi.executor = mpi::ExecutorKind::thread;
  mpc::Node a(m, thread_opts);
  const double thread_result = hlsmpc::apps::meshupdate::run_on_node(a, cfg);

  mpc::NodeOptions fiber_opts;
  fiber_opts.mpi.nranks = 8;
  fiber_opts.mpi.executor = mpi::ExecutorKind::fiber;
  fiber_opts.mpi.fiber_workers = 2;
  mpc::Node b(m, fiber_opts);
  const double fiber_result = hlsmpc::apps::meshupdate::run_on_node(b, cfg);

  EXPECT_DOUBLE_EQ(thread_result, fiber_result);
}

TEST(Integration, NodeCombinesMpiAndHlsScopes) {
  // numa-scope variable + MPI reduction across the whole node: per-socket
  // leaders combine their instance sums over MPI.
  const topo::Machine m = topo::Machine::nehalem_ex(2);  // 2 sockets
  mpc::NodeOptions opts;
  opts.mpi.nranks = 16;
  mpc::Node node(m, opts);
  hls::ModuleBuilder mb(node.hls_rt().registry(), "mod");
  auto acc = hls::add_var<long>(mb, "acc", topo::numa_scope(), 0L);
  mb.commit();
  std::atomic<long> result{-1};
  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    long& a = view.get(acc);
    // Every task adds its rank into its socket's accumulator, one at a
    // time via nowait-free single episodes to avoid a data race.
    for (int turn = 0; turn < world.size(); ++turn) {
      if (turn == world.rank(ctx)) a += world.rank(ctx);
      view.barrier({acc.handle()});
    }
    // Socket leader contributes the socket sum.
    const long mine =
        world.rank(ctx) % 8 == 0 ? a : 0L;  // cpus 0 and 8 lead
    const long total = world.allreduce_value(ctx, mine, mpi::Op::sum);
    if (world.rank(ctx) == 0) result = total;
  });
  EXPECT_EQ(result.load(), (0 + 15) * 16 / 2);
}

TEST(Integration, MoveTaskOnFiberBackendMigratesWorkerAndStorage) {
  // MPC_Move end to end on the fiber executor: the HLS counters are
  // checked, storage rebinds to the destination's instance, and the
  // fiber itself is re-pinned to the destination worker.
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  mpc::NodeOptions opts;
  opts.mpi.nranks = 2;
  opts.mpi.executor = mpi::ExecutorKind::fiber;
  opts.mpi.fiber_workers = 2;
  mpc::Node node(m, opts);
  hls::ModuleBuilder mb(node.hls_rt().registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::numa_scope(), 3);
  mb.commit();
  std::atomic<int> bad{0};
  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    if (world.rank(ctx) == 0) {
      int* before = &view.get(v);
      mpc::Node::move_task(view, 12);  // socket 1
      if (ctx.cpu() != 12) ++bad;
      if (&view.get(v) == before) ++bad;
      if (view.get(v) != 3) ++bad;
    }
    // Communication still works after the move.
    const int sum = world.allreduce_value(ctx, 1, mpi::Op::sum);
    if (sum != 2) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Integration, MigrationRebindsStorageAndMpiKeepsWorking) {
  const topo::Machine m = topo::Machine::nehalem_ex(2);
  mpc::NodeOptions opts;
  opts.mpi.nranks = 2;  // cpus 0 and 1, both on socket 0
  mpc::Node node(m, opts);
  hls::ModuleBuilder mb(node.hls_rt().registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::numa_scope(), 11);
  mb.commit();
  std::atomic<int> bad{0};
  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    const int me = world.rank(ctx);
    int* before = &view.get(v);
    if (me == 1) {
      view.migrate(9);  // move to socket 1
      if (&view.get(v) == before) ++bad;  // new numa instance
      if (view.get(v) != 11) ++bad;       // freshly initialized copy
    }
    // MPI must be unaffected by the logical migration.
    const int sum = world.allreduce_value(ctx, me, mpi::Op::sum);
    if (sum != 1) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}
