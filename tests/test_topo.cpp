#include <gtest/gtest.h>

#include "topo/scope_map.hpp"
#include "topo/topology.hpp"

namespace topo = hlsmpc::topo;
using topo::Machine;
using topo::ScopeKind;
using topo::ScopeMap;
using topo::ScopeSpec;

TEST(Topology, NehalemExShape) {
  const Machine m = Machine::nehalem_ex(4);
  EXPECT_EQ(m.num_sockets(), 4);
  EXPECT_EQ(m.num_numa(), 4);
  EXPECT_EQ(m.num_cores(), 32);
  EXPECT_EQ(m.num_cpus(), 32);
  EXPECT_EQ(m.llc_level(), 3);
  EXPECT_EQ(m.cache_level(3).size_bytes, 18u << 20);
  EXPECT_EQ(m.cache_level(3).cpus_per_instance, 8);
  EXPECT_EQ(m.num_cache_instances(3), 4);
  EXPECT_EQ(m.num_cache_instances(1), 32);
}

TEST(Topology, NehalemExMapping) {
  const Machine m = Machine::nehalem_ex(4);
  EXPECT_EQ(m.numa_of_cpu(0), 0);
  EXPECT_EQ(m.numa_of_cpu(7), 0);
  EXPECT_EQ(m.numa_of_cpu(8), 1);
  EXPECT_EQ(m.numa_of_cpu(31), 3);
  EXPECT_EQ(m.socket_of_cpu(31), 3);
  EXPECT_EQ(m.cache_instance_of_cpu(3, 15), 1);
  EXPECT_EQ(m.cache_instance_of_cpu(1, 15), 15);
}

TEST(Topology, CapacityScaling) {
  const Machine m = Machine::nehalem_ex(4, 16);
  EXPECT_EQ(m.cache_level(3).size_bytes, (18u << 20) / 16);
  // Structure is unchanged by capacity scaling.
  EXPECT_EQ(m.num_cpus(), 32);
}

TEST(Topology, Core2NodeShape) {
  const Machine m = Machine::core2_cluster_node();
  EXPECT_EQ(m.num_cpus(), 8);
  EXPECT_EQ(m.llc_level(), 2);
  // Pair-shared 6 MB L2: four instances on the node.
  EXPECT_EQ(m.num_cache_instances(2), 4);
  EXPECT_EQ(m.cache_instance_of_cpu(2, 0), 0);
  EXPECT_EQ(m.cache_instance_of_cpu(2, 1), 0);
  EXPECT_EQ(m.cache_instance_of_cpu(2, 2), 1);
}

TEST(Topology, SmtCpuMapping) {
  const Machine m = Machine::generic(2, 4, 1 << 20, /*threads_per_core=*/2);
  EXPECT_EQ(m.num_cores(), 8);
  EXPECT_EQ(m.num_cpus(), 16);
  EXPECT_EQ(m.core_of_cpu(0), 0);
  EXPECT_EQ(m.core_of_cpu(1), 0);
  EXPECT_EQ(m.core_of_cpu(2), 1);
  EXPECT_EQ(m.cpus_of_core(3), (std::vector<int>{6, 7}));
}

TEST(Topology, RejectsDegenerateDescriptions) {
  topo::MachineDesc d;
  d.sockets = 0;
  EXPECT_THROW(Machine{d}, std::invalid_argument);

  topo::MachineDesc d2;
  d2.caches = {};  // no cache levels
  EXPECT_THROW(Machine{d2}, std::invalid_argument);

  topo::MachineDesc d3;
  d3.cores_per_numa = 4;
  d3.caches = {{.level = 2, .size_bytes = 1024}};  // levels must start at 1
  EXPECT_THROW(Machine{d3}, std::invalid_argument);

  topo::MachineDesc d4;
  d4.cores_per_numa = 4;
  d4.caches = {{.level = 1, .size_bytes = 1024, .cpus_per_instance = 3}};
  EXPECT_THROW(Machine{d4}, std::invalid_argument);  // 3 does not divide 4
}

TEST(Topology, RejectsShrinkingShareDegree) {
  topo::MachineDesc d;
  d.cores_per_numa = 4;
  d.caches = {
      {.level = 1, .size_bytes = 1024, .cpus_per_instance = 4},
      {.level = 2, .size_bytes = 4096, .cpus_per_instance = 2},
  };
  EXPECT_THROW(Machine{d}, std::invalid_argument);
}

TEST(Topology, OutOfRangeQueriesThrow) {
  const Machine m = Machine::nehalem_ex(1);
  EXPECT_THROW(m.numa_of_cpu(-1), std::out_of_range);
  EXPECT_THROW(m.numa_of_cpu(8), std::out_of_range);
  EXPECT_THROW(m.cache_level(4), std::out_of_range);
  EXPECT_THROW(m.cache_instance_of_cpu(1, 99), std::out_of_range);
  EXPECT_THROW(m.cpus_of_cache_instance(3, 5), std::out_of_range);
}

TEST(ScopeSpec, NumaLevelTwoMapsToSockets) {
  topo::MachineDesc d;
  d.sockets = 2;
  d.numa_per_socket = 2;
  d.cores_per_numa = 2;
  d.caches = {{.level = 1, .size_bytes = 4096, .cpus_per_instance = 1}};
  const Machine m{d};
  const ScopeMap sm(m);
  const ScopeSpec numa2{ScopeKind::numa, 2};
  EXPECT_EQ(sm.num_instances(topo::numa_scope()), 4);
  EXPECT_EQ(sm.num_instances(numa2), 2);
  EXPECT_EQ(sm.instance_of(numa2, 0), 0);
  EXPECT_EQ(sm.instance_of(numa2, 3), 0);
  EXPECT_EQ(sm.instance_of(numa2, 4), 1);
  EXPECT_TRUE(sm.wider_or_equal(numa2, topo::numa_scope()));
  EXPECT_TRUE(sm.wider_or_equal(topo::node_scope(), numa2));
  EXPECT_EQ(topo::parse_scope("numa(2)"), numa2);
  EXPECT_EQ(topo::to_string(numa2), "numa(2)");
  EXPECT_THROW(sm.num_instances(ScopeSpec{ScopeKind::numa, 3}),
               std::invalid_argument);
}

TEST(ScopeSpec, ParseAndFormatRoundTrip) {
  EXPECT_EQ(topo::parse_scope("node"), topo::node_scope());
  EXPECT_EQ(topo::parse_scope("numa"), topo::numa_scope());
  EXPECT_EQ(topo::parse_scope("core"), topo::core_scope());
  EXPECT_EQ(topo::parse_scope("cache"), topo::cache_scope(0));
  EXPECT_EQ(topo::parse_scope("cache(llc)"), topo::cache_scope(0));
  EXPECT_EQ(topo::parse_scope("cache(2)"), topo::cache_scope(2));
  EXPECT_EQ(topo::to_string(topo::cache_scope(2)), "cache(2)");
  EXPECT_EQ(topo::to_string(topo::node_scope()), "node");
  EXPECT_THROW(topo::parse_scope("socket"), std::invalid_argument);
  EXPECT_THROW(topo::parse_scope("cache(0)"), std::invalid_argument);
  EXPECT_THROW(topo::parse_scope("cache(-1)"), std::invalid_argument);
  EXPECT_THROW(topo::parse_scope("cache(x)"), std::invalid_argument);
}

TEST(ScopeMap, InstanceCounts) {
  const Machine m = Machine::nehalem_ex(4);
  const ScopeMap sm(m);
  EXPECT_EQ(sm.num_instances(topo::node_scope()), 1);
  EXPECT_EQ(sm.num_instances(topo::numa_scope()), 4);
  EXPECT_EQ(sm.num_instances(topo::core_scope()), 32);
  EXPECT_EQ(sm.num_instances(topo::cache_scope(0)), 4);   // llc = L3
  EXPECT_EQ(sm.num_instances(topo::cache_scope(1)), 32);  // private L1
}

TEST(ScopeMap, InstanceOfCpu) {
  const Machine m = Machine::nehalem_ex(4);
  const ScopeMap sm(m);
  for (int cpu = 0; cpu < m.num_cpus(); ++cpu) {
    EXPECT_EQ(sm.instance_of(topo::node_scope(), cpu), 0);
    EXPECT_EQ(sm.instance_of(topo::numa_scope(), cpu), cpu / 8);
    EXPECT_EQ(sm.instance_of(topo::core_scope(), cpu), cpu);
    EXPECT_EQ(sm.instance_of(topo::cache_scope(0), cpu), cpu / 8);
  }
}

TEST(ScopeMap, WidestFollowsPaperOrder) {
  // "node is the largest scope and core the smallest" (paper §II.B.2).
  const Machine m = Machine::nehalem_ex(4);
  const ScopeMap sm(m);
  EXPECT_TRUE(sm.wider_or_equal(topo::node_scope(), topo::numa_scope()));
  EXPECT_TRUE(sm.wider_or_equal(topo::numa_scope(), topo::cache_scope(0)));
  EXPECT_TRUE(sm.wider_or_equal(topo::cache_scope(0), topo::cache_scope(1)));
  EXPECT_TRUE(sm.wider_or_equal(topo::cache_scope(1), topo::core_scope()));
  EXPECT_FALSE(sm.wider_or_equal(topo::core_scope(), topo::node_scope()));
  EXPECT_EQ(sm.widest(topo::core_scope(), topo::node_scope()).kind,
            ScopeKind::node);
  EXPECT_EQ(sm.widest(topo::numa_scope(), topo::cache_scope(1)).kind,
            ScopeKind::numa);
}

TEST(ScopeMap, CpusOfInstanceArePartition) {
  const Machine m = Machine::nehalem_ex(2);
  const ScopeMap sm(m);
  for (const ScopeSpec s : {topo::node_scope(), topo::numa_scope(),
                            topo::cache_scope(0), topo::core_scope()}) {
    std::vector<bool> seen(static_cast<std::size_t>(m.num_cpus()), false);
    for (int inst = 0; inst < sm.num_instances(s); ++inst) {
      for (int cpu : sm.cpus_of_instance(s, inst)) {
        EXPECT_FALSE(seen[static_cast<std::size_t>(cpu)])
            << "cpu in two instances of " << topo::to_string(s);
        seen[static_cast<std::size_t>(cpu)] = true;
        EXPECT_EQ(sm.instance_of(s, cpu), inst);
      }
    }
    for (bool b : seen) EXPECT_TRUE(b);
  }
}

TEST(ScopeMap, CacheLevelValidation) {
  const Machine m = Machine::core2_cluster_node();  // two levels only
  const ScopeMap sm(m);
  EXPECT_EQ(sm.resolved_cache_level(topo::cache_scope(0)), 2);
  EXPECT_THROW(sm.num_instances(topo::cache_scope(3)), std::invalid_argument);
}
