// Transport conformance suite.
//
// Every Transport implementation must honor the same contract
// (transport.hpp): non-overtaking delivery per (source, tag, context)
// channel, zero-byte messages, self-sends, wildcard receives, probe
// visibility, truncation errors on both match paths, and clean
// exhaustion (TransportError{transport_exhausted}, nothing enqueued).
// The suite runs parameterized over the intra-node shared-memory
// transport and the simulated inter-node fabric so a future transport
// (e.g. the socket one) plugs into the same checklist.
//
// Also here: the HLSMPC_COLL_* environment overrides of CollConfig
// (coll_config_from_env) with their range clamps.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "memtrack/memtrack.hpp"
#include "mpi/runtime.hpp"
#include "mpi/shm_transport.hpp"
#include "mpi/sim_fabric.hpp"

namespace fault = hlsmpc::fault;
namespace mpi = hlsmpc::mpi;

namespace {

/// Minimal preemptive context for driving a transport without an
/// executor: the conformance cases below are single-threaded (sends on
/// both transports complete eagerly for small payloads; rendezvous
/// completes at match time), so a plain yield suffices.
class TestCtx final : public hlsmpc::ult::TaskContext {
 public:
  explicit TestCtx(int id) { set_task_id(id); }
  void yield() override { std::this_thread::yield(); }
  bool cooperative() const override { return false; }
};

/// By-value convenience over transport_wait for freshly returned requests.
void wait(hlsmpc::ult::TaskContext& ctx, mpi::Request req,
          mpi::Status* st = nullptr) {
  mpi::transport_wait(ctx, req, st);
}

struct Harness {
  virtual ~Harness() = default;
  virtual mpi::Transport& t() = 0;
};

struct ShmHarness : Harness {
  ShmHarness(int n, mpi::TransportLimits limits)
      : bufs(mpi::BufferConfig{}, n, n, tracker), tr(n, bufs, limits) {}
  hlsmpc::memtrack::Tracker tracker;
  mpi::BufferManager bufs;
  mpi::ShmTransport tr;
  mpi::Transport& t() override { return tr; }
};

struct FabricHarness : Harness {
  FabricHarness(int n, mpi::TransportLimits limits) : tr(make(n, limits)) {}
  static mpi::SimFabricTransport::Options make(int n,
                                               mpi::TransportLimits limits) {
    mpi::SimFabricTransport::Options o;
    o.nranks = n;
    o.ranks_per_node = 2;
    o.limits = limits;
    return o;
  }
  mpi::SimFabricTransport tr;
  mpi::Transport& t() override { return tr; }
};

enum class Kind { shm, fabric };

std::unique_ptr<Harness> make_harness(Kind k, int n,
                                      mpi::TransportLimits limits = {}) {
  if (k == Kind::shm) return std::make_unique<ShmHarness>(n, limits);
  return std::make_unique<FabricHarness>(n, limits);
}

class TransportConformance : public testing::TestWithParam<Kind> {
 protected:
  static constexpr int kCtx = 0;
  std::unique_ptr<Harness> h_ = make_harness(GetParam(), 4);
  mpi::Transport& t_ = h_->t();
  TestCtx c0_{0}, c1_{1}, c2_{2};
};

std::string kind_name(const testing::TestParamInfo<Kind>& info) {
  return info.param == Kind::shm ? "shm" : "fabric";
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(Transports, TransportConformance,
                         testing::Values(Kind::shm, Kind::fabric),
                         kind_name);

TEST_P(TransportConformance, NamesAndEndpoints) {
  EXPECT_EQ(t_.nendpoints(), 4);
  EXPECT_STREQ(t_.name(), GetParam() == Kind::shm ? "shm" : "sim_fabric");
}

TEST_P(TransportConformance, DeliversPayloadAndStatus) {
  const int v = 42;
  mpi::Request s = t_.isend(c0_, 0, 1, 1, &v, sizeof(v), 7, kCtx);
  int got = 0;
  mpi::Request r = t_.irecv(c1_, 1, &got, sizeof(got), 0, 7, kCtx);
  mpi::Status st;
  mpi::transport_wait(c1_, r, &st);
  mpi::transport_wait(c0_, s);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 7);
  EXPECT_EQ(st.bytes, sizeof(int));
}

TEST_P(TransportConformance, ZeroByteMessage) {
  mpi::Request s = t_.isend(c0_, 0, 1, 1, nullptr, 0, 3, kCtx);
  mpi::Request r = t_.irecv(c1_, 1, nullptr, 0, 0, 3, kCtx);
  mpi::Status st;
  mpi::transport_wait(c1_, r, &st);
  mpi::transport_wait(c0_, s);
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.source, 0);
}

TEST_P(TransportConformance, SelfSend) {
  const double v = 2.5;
  mpi::Request s = t_.isend(c0_, 0, 0, 0, &v, sizeof(v), 1, kCtx);
  double got = 0;
  mpi::Request r = t_.irecv(c0_, 0, &got, sizeof(got), 0, 1, kCtx);
  mpi::transport_wait(c0_, r);
  mpi::transport_wait(c0_, s);
  EXPECT_EQ(got, 2.5);
}

TEST_P(TransportConformance, NonOvertakingSameChannel) {
  // Four sends on one (source, tag, context) channel must be received in
  // send order, whether matched from the unexpected queue...
  for (int i = 0; i < 4; ++i) {
    mpi::Request s = t_.isend(c0_, 0, 1, 1, &i, sizeof(i), 9, kCtx);
    mpi::transport_wait(c0_, s);
  }
  for (int i = 0; i < 4; ++i) {
    int got = -1;
    mpi::Request r = t_.irecv(c1_, 1, &got, sizeof(got), 0, 9, kCtx);
    mpi::transport_wait(c1_, r);
    EXPECT_EQ(got, i);
  }
}

TEST_P(TransportConformance, WildcardSourceAndTag) {
  const int a = 10, b = 20;
  mpi::Request s1 = t_.isend(c0_, 0, 1, 1, &a, sizeof(a), 4, kCtx);
  mpi::Request s2 = t_.isend(c2_, 2, 1, 1, &b, sizeof(b), 8, kCtx);
  mpi::transport_wait(c0_, s1);
  mpi::transport_wait(c2_, s2);
  int got = 0;
  mpi::Status st;
  mpi::Request r1 =
      t_.irecv(c1_, 1, &got, sizeof(got), mpi::kAnySource, 8, kCtx);
  mpi::transport_wait(c1_, r1, &st);
  EXPECT_EQ(got, 20);
  EXPECT_EQ(st.source, 2);
  mpi::Request r2 =
      t_.irecv(c1_, 1, &got, sizeof(got), 0, mpi::kAnyTag, kCtx);
  mpi::transport_wait(c1_, r2, &st);
  EXPECT_EQ(got, 10);
  EXPECT_EQ(st.tag, 4);
}

TEST_P(TransportConformance, ContextsDoNotCrossMatch) {
  const int a = 1, b = 2;
  mpi::Request s1 = t_.isend(c0_, 0, 1, 1, &a, sizeof(a), 5, /*context=*/0);
  mpi::Request s2 = t_.isend(c0_, 0, 1, 1, &b, sizeof(b), 5, /*context=*/1);
  mpi::transport_wait(c0_, s1);
  mpi::transport_wait(c0_, s2);
  int got = 0;
  mpi::Request r =
      t_.irecv(c1_, 1, &got, sizeof(got), 0, 5, /*context=*/1);
  mpi::transport_wait(c1_, r);
  EXPECT_EQ(got, 2);  // the context-1 message, not the earlier context-0 one
}

TEST_P(TransportConformance, ProbeSeesPendingMessage) {
  mpi::Status st;
  EXPECT_FALSE(t_.iprobe(1, mpi::kAnySource, mpi::kAnyTag, kCtx, &st));
  const int v = 5;
  mpi::Request s = t_.isend(c0_, 0, 1, 1, &v, sizeof(v), 6, kCtx);
  mpi::transport_wait(c0_, s);
  ASSERT_TRUE(t_.iprobe(1, mpi::kAnySource, mpi::kAnyTag, kCtx, &st));
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 6);
  EXPECT_EQ(st.bytes, sizeof(int));
  // Probing must not consume: the receive still matches.
  int got = 0;
  mpi::Request r = t_.irecv(c1_, 1, &got, sizeof(got), 0, 6, kCtx);
  mpi::transport_wait(c1_, r);
  EXPECT_EQ(got, 5);
}

TEST_P(TransportConformance, TruncationOnUnexpectedMatchFailsRecv) {
  const std::int64_t v = 1;
  mpi::Request s = t_.isend(c0_, 0, 1, 1, &v, sizeof(v), 2, kCtx);
  mpi::transport_wait(c0_, s);
  std::int32_t small = 0;
  mpi::Request r = t_.irecv(c1_, 1, &small, sizeof(small), 0, 2, kCtx);
  EXPECT_THROW(mpi::transport_wait(c1_, r), mpi::MpiError);
}

TEST_P(TransportConformance, TruncationOnPostedMatchFailsBothSides) {
  std::int32_t small = 0;
  mpi::Request r = t_.irecv(c1_, 1, &small, sizeof(small), 0, 2, kCtx);
  const std::int64_t v = 1;
  mpi::Request s = t_.isend(c0_, 0, 1, 1, &v, sizeof(v), 2, kCtx);
  EXPECT_THROW(mpi::transport_wait(c1_, r), mpi::MpiError);
  EXPECT_THROW(mpi::transport_wait(c0_, s), mpi::MpiError);
}

TEST_P(TransportConformance, BadEndpointIsAnError) {
  const int v = 0;
  EXPECT_THROW(t_.isend(c0_, 0, 99, 99, &v, sizeof(v), 0, kCtx),
               mpi::MpiError);
  int got = 0;
  EXPECT_THROW(t_.irecv(c0_, 99, &got, sizeof(got), 0, 0, kCtx),
               mpi::MpiError);
}

TEST_P(TransportConformance, ExhaustionByMessageCountIsCleanAndRecoverable) {
  mpi::TransportLimits lim;
  lim.max_unexpected_msgs = 2;
  auto h = make_harness(GetParam(), 2, lim);
  mpi::Transport& t = h->t();
  const int v = 1;
  wait(c0_, t.isend(c0_, 0, 1, 1, &v, sizeof(v), 0, kCtx));
  wait(c0_, t.isend(c0_, 0, 1, 1, &v, sizeof(v), 0, kCtx));
  try {
    t.isend(c0_, 0, 1, 1, &v, sizeof(v), 0, kCtx);
    FAIL() << "third unmatched send must exhaust the queue";
  } catch (const mpi::TransportError& e) {
    EXPECT_EQ(e.code(), hlsmpc::ErrorCode::transport_exhausted);
    EXPECT_TRUE(hlsmpc::recoverable(e.code()));
  }
  // Clean degradation: nothing was enqueued, draining one message frees a
  // slot and the transport works again.
  int got = 0;
  TestCtx c1{1};
  wait(c1, t.irecv(c1, 1, &got, sizeof(got), 0, 0, kCtx));
  EXPECT_EQ(got, 1);
  wait(c0_, t.isend(c0_, 0, 1, 1, &v, sizeof(v), 0, kCtx));
}

TEST_P(TransportConformance, ExhaustionByByteBudget) {
  mpi::TransportLimits lim;
  lim.max_unexpected_bytes = 12;
  auto h = make_harness(GetParam(), 2, lim);
  mpi::Transport& t = h->t();
  const std::int64_t v = 7;
  wait(c0_, t.isend(c0_, 0, 1, 1, &v, sizeof(v), 0, kCtx));
  try {
    t.isend(c0_, 0, 1, 1, &v, sizeof(v), 0, kCtx);
    FAIL() << "byte budget must refuse the second 8-byte send";
  } catch (const mpi::TransportError& e) {
    EXPECT_EQ(e.code(), hlsmpc::ErrorCode::transport_exhausted);
  }
  // A posted receive bypasses the unexpected queue entirely.
  std::int64_t got = 0;
  TestCtx c1{1};
  mpi::Request r = t.irecv(c1, 1, &got, sizeof(got), 0, 1, kCtx);
  wait(c0_, t.isend(c0_, 0, 1, 1, &v, sizeof(v), 1, kCtx));
  mpi::transport_wait(c1, r);
  EXPECT_EQ(got, 7);
}

TEST_P(TransportConformance, StatsCountTraffic) {
  const auto before = t_.stats().messages.load();
  const int v = 3;
  wait(c0_, t_.isend(c0_, 0, 1, 1, &v, sizeof(v), 0, kCtx));
  int got = 0;
  wait(c1_, t_.irecv(c1_, 1, &got, sizeof(got), 0, 0, kCtx));
  EXPECT_EQ(t_.stats().messages.load(), before + 1);
  EXPECT_GE(t_.stats().bytes.load(), sizeof(int));
}

// ---- large payloads: rendezvous (shm) vs always-copy (fabric) ----

TEST_P(TransportConformance, LargePayloadRoundTrip) {
  const std::size_t n = 64 * 1024;  // past the 8 KB eager threshold
  std::vector<std::uint8_t> in(n), out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  mpi::Request r = t_.irecv(c1_, 1, out.data(), n, 0, 11, kCtx);
  mpi::Request s = t_.isend(c0_, 0, 1, 1, in.data(), n, 11, kCtx);
  mpi::transport_wait(c0_, s);
  mpi::transport_wait(c1_, r);
  EXPECT_EQ(in, out);
}

// ---- transient-failure retry (the "shm:flap" / "fabric:flap" sites) ----

namespace {

const char* flap_site(Kind k) {
  return k == Kind::shm ? "shm:flap" : "fabric:flap";
}

}  // namespace

TEST_P(TransportConformance, TransientFlapIsRetriedThenSucceeds) {
  // Endpoint 1 fails transiently three times; the transport must absorb
  // the flaps with backed-off retries and then deliver normally — the
  // caller never sees an error.
  fault::FaultInjector inj;
  inj.arm(flap_site(GetParam()), /*nth=*/1, /*index=*/1, /*times=*/3);
  fault::ScopedFaultInjection scoped(inj);
  const int v = 7;
  wait(c0_, t_.isend(c0_, 0, 1, 1, &v, sizeof(v), 2, kCtx));
  int got = 0;
  wait(c1_, t_.irecv(c1_, 1, &got, sizeof(got), 0, 2, kCtx));
  EXPECT_EQ(got, 7);
  EXPECT_EQ(inj.fired(flap_site(GetParam())), 3u);
  EXPECT_EQ(t_.stats().link_flaps.load(), 3u);
  EXPECT_EQ(t_.stats().retries.load(), 3u);
}

TEST_P(TransportConformance, PersistentFlapExhaustsBudgetWithoutPoison) {
  // A link that never comes back must surface as transport_exhausted once
  // the bounded retry budget runs out — a TRANSIENT-class failure, not a
  // NodeDeadError: reclassifying a flap as a death is cluster
  // supervision's call, never the transport's.
  fault::FaultInjector inj;
  inj.arm_always(flap_site(GetParam()), /*index=*/1);
  fault::ScopedFaultInjection scoped(inj);
  const int v = 1;
  try {
    t_.isend(c0_, 0, 1, 1, &v, sizeof(v), 2, kCtx);
    FAIL() << "send through a permanently flapping link must throw";
  } catch (const mpi::NodeDeadError&) {
    FAIL() << "retry exhaustion must not be classified as a node death";
  } catch (const mpi::TransportError& e) {
    EXPECT_EQ(e.code(), hlsmpc::ErrorCode::transport_exhausted);
    EXPECT_TRUE(hlsmpc::recoverable(e.code()));
  }
  EXPECT_GE(t_.stats().retries.load(), 1u);
  if (GetParam() == Kind::fabric) {
    auto& fab = dynamic_cast<mpi::SimFabricTransport&>(t_);
    EXPECT_EQ(fab.first_dead_node(), -1);
  }
  // The flap only wedged this one operation: once the link heals, the
  // same channel delivers.
  inj.disarm(flap_site(GetParam()));
  wait(c0_, t_.isend(c0_, 0, 1, 1, &v, sizeof(v), 2, kCtx));
  int got = 0;
  wait(c1_, t_.irecv(c1_, 1, &got, sizeof(got), 0, 2, kCtx));
  EXPECT_EQ(got, 1);
}

// ---- CollConfig environment overrides (coll_config_from_env) ----

namespace {

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) { unset(); }
  ~EnvGuard() { unset(); }
  void set(const char* v) { setenv(name_, v, /*overwrite=*/1); }
  void unset() { unsetenv(name_); }
  const char* name_;
};

}  // namespace

TEST(CollConfigEnv, UnsetLeavesBaseUntouched) {
  mpi::CollConfig base;
  base.small_threshold = 777;
  const mpi::CollConfig got = mpi::coll_config_from_env(base);
  EXPECT_EQ(got.small_threshold, 777u);
  EXPECT_EQ(got.enable_shm, base.enable_shm);
  EXPECT_EQ(got.pipeline_threshold, base.pipeline_threshold);
  EXPECT_EQ(got.fragment_bytes, base.fragment_bytes);
}

TEST(CollConfigEnv, OverridesApply) {
  EnvGuard shm("HLSMPC_COLL_SHM"), small("HLSMPC_COLL_SMALL_THRESHOLD"),
      pipe("HLSMPC_COLL_PIPELINE_THRESHOLD"),
      frag("HLSMPC_COLL_FRAGMENT_BYTES"), yield("HLSMPC_COLL_PIPELINE_YIELD");
  shm.set("0");
  small.set("512");
  pipe.set("65536");
  frag.set("8192");
  yield.set("0");
  const mpi::CollConfig got = mpi::coll_config_from_env({});
  EXPECT_FALSE(got.enable_shm);
  EXPECT_EQ(got.small_threshold, 512u);
  EXPECT_EQ(got.pipeline_threshold, 65536u);
  EXPECT_EQ(got.fragment_bytes, 8192u);
  EXPECT_FALSE(got.pipeline_yield);
}

TEST(CollConfigEnv, ValuesAreRangeClamped) {
  EnvGuard small("HLSMPC_COLL_SMALL_THRESHOLD"),
      pipe("HLSMPC_COLL_PIPELINE_THRESHOLD"),
      frag("HLSMPC_COLL_FRAGMENT_BYTES");
  small.set("999999999");  // clamped to 1 MiB
  pipe.set("4");           // clamped up to small_threshold
  frag.set("7");           // clamped to 1 KiB
  mpi::CollConfig got = mpi::coll_config_from_env({});
  EXPECT_EQ(got.small_threshold, std::size_t{1024 * 1024});
  EXPECT_EQ(got.pipeline_threshold, got.small_threshold);
  EXPECT_EQ(got.fragment_bytes, 1024u);
  frag.set("999999999");  // clamped to 16 MiB
  got = mpi::coll_config_from_env({});
  EXPECT_EQ(got.fragment_bytes, std::size_t{16 * 1024 * 1024});
}

TEST(CollConfigEnv, PipelineThresholdZeroMeansNever) {
  EnvGuard pipe("HLSMPC_COLL_PIPELINE_THRESHOLD");
  pipe.set("0");
  const mpi::CollConfig got = mpi::coll_config_from_env({});
  EXPECT_EQ(got.pipeline_threshold, SIZE_MAX);
}

TEST(CollConfigEnv, GarbageIsIgnored) {
  EnvGuard small("HLSMPC_COLL_SMALL_THRESHOLD"), shm("HLSMPC_COLL_SHM");
  small.set("not-a-number");
  shm.set("banana");
  mpi::CollConfig base;
  base.small_threshold = 321;
  const mpi::CollConfig got = mpi::coll_config_from_env(base);
  EXPECT_EQ(got.small_threshold, 321u);
  EXPECT_EQ(got.enable_shm, base.enable_shm);
}
