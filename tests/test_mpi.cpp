#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mpi/runtime.hpp"
#include "topo/topology.hpp"

namespace mpi = hlsmpc::mpi;
namespace topo = hlsmpc::topo;
using hlsmpc::ult::TaskContext;

namespace {

mpi::Options opts(int nranks, mpi::ExecutorKind exec) {
  mpi::Options o;
  o.nranks = nranks;
  o.executor = exec;
  return o;
}

struct Param {
  int nranks;
  mpi::ExecutorKind exec;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  return std::to_string(info.param.nranks) + "ranks_" +
         (info.param.exec == mpi::ExecutorKind::thread ? "thread" : "fiber");
}

class MpiParam : public testing::TestWithParam<Param> {
 protected:
  topo::Machine machine_ = topo::Machine::nehalem_ex(2);
  mpi::Runtime rt_{machine_, opts(GetParam().nranks, GetParam().exec)};
};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpiParam,
    testing::Values(Param{1, mpi::ExecutorKind::thread},
                    Param{2, mpi::ExecutorKind::thread},
                    Param{5, mpi::ExecutorKind::thread},
                    Param{8, mpi::ExecutorKind::thread},
                    Param{2, mpi::ExecutorKind::fiber},
                    Param{7, mpi::ExecutorKind::fiber},
                    Param{16, mpi::ExecutorKind::fiber}),
    param_name);

TEST_P(MpiParam, RankAndSize) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  std::atomic<int> seen{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    if (world.size() != n) ++bad;
    const int r = world.rank(ctx);
    if (r < 0 || r >= n) ++bad;
    seen.fetch_add(1 << world.rank(ctx) % 30, std::memory_order_relaxed);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(MpiParam, RingSendRecv) {
  const int n = GetParam().nranks;
  if (n < 2) GTEST_SKIP();
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const int next = (me + 1) % n;
    const int prev = (me - 1 + n) % n;
    // Odd/even ordering to avoid relying on buffering.
    int got = -1;
    if (me % 2 == 0) {
      world.send_value(ctx, me, next, 7);
      got = world.recv_value<int>(ctx, prev, 7);
    } else {
      got = world.recv_value<int>(ctx, prev, 7);
      world.send_value(ctx, me, next, 7);
    }
    if (got != prev) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(MpiParam, Barrier) {
  const int n = GetParam().nranks;
  std::atomic<int> phase_counter{0};
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    for (int phase = 0; phase < 4; ++phase) {
      phase_counter.fetch_add(1);
      world.barrier(ctx);
      // After the barrier, every rank must have contributed to this phase.
      if (phase_counter.load() < (phase + 1) * n) ++bad;
      world.barrier(ctx);
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(MpiParam, BcastFromEveryRoot) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (int root = 0; root < n; ++root) {
      std::vector<double> data(64, me == root ? root * 1.5 : -1.0);
      world.bcast(ctx, std::span<double>(data), root);
      for (double v : data) {
        if (v != root * 1.5) ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(MpiParam, ReduceAndAllreduce) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const long expected_sum = static_cast<long>(n) * (n - 1) / 2;
    // reduce to each root
    for (int root = 0; root < n; ++root) {
      std::vector<long> in = {static_cast<long>(me), static_cast<long>(2 * me)};
      std::vector<long> out(2, -1);
      world.reduce(ctx, std::span<const long>(in), std::span<long>(out),
                   mpi::Op::sum, root);
      if (me == root) {
        if (out[0] != expected_sum || out[1] != 2 * expected_sum) ++bad;
      }
    }
    const int mx = world.allreduce_value(ctx, me * me, mpi::Op::max);
    if (mx != (n - 1) * (n - 1)) ++bad;
    const int mn = world.allreduce_value(ctx, me + 10, mpi::Op::min);
    if (mn != 10) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(MpiParam, GatherScatterAllgather) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    // gather
    const int root = n - 1;
    std::vector<int> all(static_cast<std::size_t>(n), -1);
    world.gather(ctx, &me, sizeof(int), all.data(), root);
    if (me == root) {
      for (int r = 0; r < n; ++r) {
        if (all[static_cast<std::size_t>(r)] != r) ++bad;
      }
    }
    // scatter back doubled values
    if (me == root) {
      for (int r = 0; r < n; ++r) all[static_cast<std::size_t>(r)] = 2 * r;
    }
    int mine = -1;
    world.scatter(ctx, all.data(), sizeof(int), &mine, root);
    if (mine != 2 * me) ++bad;
    // allgather
    std::vector<int> everyone(static_cast<std::size_t>(n), -1);
    const int token = me + 100;
    world.allgather(ctx, &token, sizeof(int), everyone.data());
    for (int r = 0; r < n; ++r) {
      if (everyone[static_cast<std::size_t>(r)] != r + 100) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(MpiParam, Alltoall) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    std::vector<int> out(static_cast<std::size_t>(n));
    std::vector<int> in(static_cast<std::size_t>(n), -1);
    for (int r = 0; r < n; ++r) {
      out[static_cast<std::size_t>(r)] = me * 1000 + r;  // block for rank r
    }
    world.alltoall(ctx, out.data(), sizeof(int), in.data());
    for (int r = 0; r < n; ++r) {
      if (in[static_cast<std::size_t>(r)] != r * 1000 + me) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(MpiParam, Scan) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const long prefix = world.scan_value(ctx, static_cast<long>(me + 1),
                                         mpi::Op::sum);
    const long expected = static_cast<long>(me + 1) * (me + 2) / 2;
    if (prefix != expected) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
  (void)n;
}

TEST_P(MpiParam, SplitEvenOdd) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    mpi::Comm& half = world.split(ctx, me % 2, me);
    const int expected_size = n / 2 + ((me % 2 == 0) ? n % 2 : 0);
    if (half.size() != expected_size) ++bad;
    if (half.rank(ctx) != me / 2) ++bad;
    // The sub-communicator must be fully functional.
    const int sum = half.allreduce_value(ctx, 1, mpi::Op::sum);
    if (sum != expected_size) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(MpiParam, DupIsIndependent) {
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    mpi::Comm& copy = world.dup(ctx);
    if (copy.size() != world.size()) ++bad;
    if (copy.rank(ctx) != world.rank(ctx)) ++bad;
    if (&copy == &world) ++bad;
    copy.barrier(ctx);
  });
  EXPECT_EQ(bad.load(), 0);
}

// ---- non-parameterized behaviour tests ----

namespace {
topo::Machine mach2() { return topo::Machine::nehalem_ex(1); }
}  // namespace

TEST(Mpi, AnySourceAnyTag) {
  mpi::Runtime rt(mach2(), opts(4, mpi::ExecutorKind::thread));
  std::atomic<int> sum{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      for (int i = 0; i < 3; ++i) {
        mpi::Status st;
        const int v =
            world.recv_value<int>(ctx, mpi::kAnySource, mpi::kAnyTag, &st);
        EXPECT_EQ(v, st.source * 10 + st.tag);
        sum += v;
      }
    } else {
      world.send_value(ctx, me * 10 + me, 0, me);
    }
  });
  EXPECT_EQ(sum.load(), 11 + 22 + 33);
}

TEST(Mpi, MessageOrderingIsFifoPerPair) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    constexpr int kN = 100;
    if (me == 0) {
      for (int i = 0; i < kN; ++i) world.send_value(ctx, i, 1, 5);
    } else {
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(world.recv_value<int>(ctx, 0, 5), i);
      }
    }
  });
}

TEST(Mpi, TagSelectivityAcrossInterleavedStreams) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      world.send_value(ctx, 111, 1, /*tag=*/1);
      world.send_value(ctx, 222, 1, /*tag=*/2);
      world.send_value(ctx, 112, 1, /*tag=*/1);
    } else {
      // Drain tag 2 first even though it arrived second.
      EXPECT_EQ(world.recv_value<int>(ctx, 0, 2), 222);
      EXPECT_EQ(world.recv_value<int>(ctx, 0, 1), 111);
      EXPECT_EQ(world.recv_value<int>(ctx, 0, 1), 112);
    }
  });
}

TEST(Mpi, RendezvousLargeMessage) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  const std::size_t big = rt.buffers().eager_threshold() * 4 + 13;
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      std::vector<std::uint8_t> data(big);
      for (std::size_t i = 0; i < big; ++i) {
        data[i] = static_cast<std::uint8_t>(i * 7);
      }
      world.send(ctx, data.data(), big, 1, 0);
    } else {
      std::vector<std::uint8_t> data(big, 0);
      mpi::Status st;
      world.recv(ctx, data.data(), big, 0, 0, &st);
      EXPECT_EQ(st.bytes, big);
      for (std::size_t i = 0; i < big; i += 997) {
        ASSERT_EQ(data[i], static_cast<std::uint8_t>(i * 7));
      }
    }
  });
  EXPECT_GE(rt.stats().rendezvous_sends.load(), 1u);
}

TEST(Mpi, IsendIrecvWaitAndTest) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      int payload = 99;
      mpi::Request s = world.isend(ctx, &payload, sizeof(int), 1, 3);
      world.wait(ctx, s);
    } else {
      int out = 0;
      mpi::Request r = world.irecv(ctx, &out, sizeof(int), 0, 3);
      while (!world.test(r)) ctx.yield();
      EXPECT_EQ(out, 99);
    }
  });
}

TEST(Mpi, ProbeReportsSizeWithoutConsuming) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      std::vector<int> v = {1, 2, 3, 4};
      world.send(ctx, v.data(), v.size() * sizeof(int), 1, 9);
    } else {
      mpi::Status st;
      world.probe(ctx, 0, 9, &st);
      EXPECT_EQ(st.bytes, 4 * sizeof(int));
      EXPECT_EQ(st.source, 0);
      std::vector<int> v(st.bytes / sizeof(int));
      world.recv(ctx, v.data(), st.bytes, 0, 9);
      EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4}));
    }
  });
}

TEST(Mpi, TruncationRaisesOnReceiver) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  std::atomic<bool> threw{false};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      std::vector<int> v(8, 1);
      try {
        world.send(ctx, v.data(), v.size() * sizeof(int), 1, 0);
      } catch (const mpi::MpiError&) {
        // Sender may or may not observe the failure depending on protocol.
      }
    } else {
      int small = 0;
      try {
        world.recv(ctx, &small, sizeof(int), 0, 0);
      } catch (const mpi::MpiError&) {
        threw = true;
      }
    }
  });
  EXPECT_TRUE(threw.load());
}

TEST(Mpi, SendrecvExchangesWithoutDeadlock) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const int other = 1 - me;
    // Both sides exchange simultaneously with large (rendezvous) payloads.
    std::vector<double> out(4096, me + 0.5);
    std::vector<double> in(4096, -1);
    world.sendrecv(ctx, out.data(), out.size() * sizeof(double), other, 0,
                   in.data(), in.size() * sizeof(double), other, 0);
    EXPECT_EQ(in[0], other + 0.5);
    EXPECT_EQ(in[4095], other + 0.5);
  });
}

TEST(Mpi, SameAddressCopyIsElided) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  static std::vector<int> shared_image(50000, 0);  // stands in for HLS image
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 1) {
      // Sender's region is the same memory the receiver will target.
      for (int i = 25000; i < 50000; ++i) shared_image[static_cast<std::size_t>(i)] = i;
      world.send(ctx, shared_image.data() + 25000, 25000 * sizeof(int), 0, 0);
    } else {
      world.recv(ctx, shared_image.data() + 25000, 25000 * sizeof(int), 1, 0);
      EXPECT_EQ(shared_image[30000], 30000);
    }
  });
  EXPECT_EQ(rt.stats().copies_elided.load(), 1u);
}

TEST(Mpi, BufferPolicyPooledVsPerPair) {
  using hlsmpc::memtrack::Category;
  // MPC-like pooled policy: small reservation independent of job size.
  mpi::Options pooled = opts(8, mpi::ExecutorKind::thread);
  pooled.buffers.kind = mpi::BufferPolicyKind::pooled;
  pooled.total_ranks = 736;
  hlsmpc::memtrack::Tracker t1;
  {
    mpi::Runtime rt(mach2(), pooled, &t1);
    const std::size_t pooled_bytes = t1.current(Category::runtime_buffers);
    EXPECT_EQ(pooled_bytes,
              pooled.buffers.eager_buffer_bytes *
                  static_cast<std::size_t>(pooled.buffers.pool_initial));
  }

  // Open-MPI-like per-pair policy: reservation grows with total job size.
  mpi::Options aggressive = opts(8, mpi::ExecutorKind::thread);
  aggressive.buffers.kind = mpi::BufferPolicyKind::per_pair;
  aggressive.total_ranks = 736;
  hlsmpc::memtrack::Tracker t2;
  {
    mpi::Runtime rt(mach2(), aggressive, &t2);
    const std::size_t per_pair_bytes = t2.current(Category::runtime_buffers);
    EXPECT_EQ(per_pair_bytes,
              aggressive.buffers.per_pair_bytes * 8u * 735u +
                  aggressive.buffers.eager_buffer_bytes *
                      static_cast<std::size_t>(aggressive.buffers.pool_initial));
    EXPECT_GT(per_pair_bytes, t1.peak_total());
  }
  // Both release everything at teardown.
  EXPECT_EQ(t1.current_total(), 0u);
  EXPECT_EQ(t2.current_total(), 0u);
}

TEST(Mpi, PoolGrowsUnderUnexpectedTraffic) {
  mpi::Options o = opts(2, mpi::ExecutorKind::thread);
  o.buffers.pool_initial = 1;
  mpi::Runtime rt(mach2(), o);
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      for (int i = 0; i < 32; ++i) world.send_value(ctx, i, 1, 0);
      world.barrier(ctx);
    } else {
      world.barrier(ctx);  // force all 32 to be buffered as unexpected
      for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(world.recv_value<int>(ctx, 0, 0), i);
      }
    }
  });
  EXPECT_GE(rt.buffers().bytes_reserved(),
            32u * o.buffers.eager_buffer_bytes);
  EXPECT_EQ(rt.buffers().leased(), 0);
}

TEST(Mpi, ErrorsOnBadArguments) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  std::atomic<int> caught{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    if (world.rank(ctx) != 0) return;
    int v = 0;
    try {
      world.send_value(ctx, v, 5, 0);  // no rank 5
    } catch (const mpi::MpiError&) {
      ++caught;
    }
    try {
      world.send_value(ctx, v, 1, -3);  // negative tag
    } catch (const mpi::MpiError&) {
      ++caught;
    }
    try {
      mpi::Request bad;
      world.wait(ctx, bad);
    } catch (const mpi::MpiError&) {
      ++caught;
    }
  });
  EXPECT_EQ(caught.load(), 3);
}

TEST(Mpi, RuntimeValidatesOptions) {
  mpi::Options o;
  o.nranks = 8;
  o.total_ranks = 4;  // smaller than local
  EXPECT_THROW(mpi::Runtime(mach2(), o), mpi::MpiError);
}

TEST(Mpi, WaitallCompletesMixedRequests) {
  mpi::Runtime rt(mach2(), opts(3, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      std::vector<int> in(2, -1);
      std::vector<mpi::Request> reqs;
      reqs.push_back(world.irecv(ctx, &in[0], sizeof(int), 1, 0));
      reqs.push_back(world.irecv(ctx, &in[1], sizeof(int), 2, 0));
      reqs.push_back(mpi::Request{});  // inactive entries are skipped
      world.waitall(ctx, reqs);
      EXPECT_EQ(in[0], 10);
      EXPECT_EQ(in[1], 20);
    } else {
      world.send_value(ctx, me * 10, 0, 0);
    }
  });
}

TEST(Mpi, WaitanyReturnsACompletedIndex) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      int a = -1, b = -1;
      std::vector<mpi::Request> reqs;
      reqs.push_back(world.irecv(ctx, &a, sizeof(int), 1, 7));
      reqs.push_back(world.irecv(ctx, &b, sizeof(int), 1, 8));
      world.barrier(ctx);  // tag 8 sent before, tag 7 only after the ack
      mpi::Status st;
      const int idx = world.waitany(ctx, reqs, &st);
      EXPECT_EQ(idx, 1);
      EXPECT_EQ(b, 99);
      EXPECT_EQ(st.tag, 8);
      EXPECT_FALSE(reqs[1].valid());
      world.send_value(ctx, 0, 1, 9);  // ack: now release the other send
      world.wait(ctx, reqs[0]);
      EXPECT_EQ(a, 1);
    } else {
      world.send_value(ctx, 99, 0, 8);
      world.barrier(ctx);
      (void)world.recv_value<int>(ctx, 0, 9);
      world.send_value(ctx, 1, 0, 7);
    }
  });
}

TEST(Mpi, WaitanyAllInvalidThrows) {
  mpi::Runtime rt(mach2(), opts(1, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    std::vector<mpi::Request> reqs(3);
    EXPECT_THROW(world.waitany(ctx, reqs), mpi::MpiError);
  });
}

TEST(Mpi, SelfSendRecvWorks) {
  mpi::Runtime rt(mach2(), opts(2, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    // Self messaging through the deadlock-free nonblocking shape.
    int out = 100 + me, in = -1;
    mpi::Request r = world.irecv(ctx, &in, sizeof(int), me, 1);
    mpi::Request s = world.isend(ctx, &out, sizeof(int), me, 1);
    world.wait(ctx, s);
    world.wait(ctx, r);
    EXPECT_EQ(in, 100 + me);
  });
}

TEST(Mpi, ZeroByteCollectives) {
  mpi::Runtime rt(mach2(), opts(4, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    world.bcast(ctx, nullptr, 0, 0);
    world.gather(ctx, nullptr, 0, nullptr, 0);
    world.allgather(ctx, nullptr, 0, nullptr);
    world.alltoall(ctx, nullptr, 0, nullptr);
    world.barrier(ctx);
  });
}

TEST(Mpi, GathervVariableSizes) {
  mpi::Runtime rt(mach2(), opts(4, mpi::ExecutorKind::thread));
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const int n = world.size();
    // Rank r contributes r+1 ints.
    std::vector<std::size_t> counts, displs;
    std::size_t off = 0;
    for (int r = 0; r < n; ++r) {
      counts.push_back(static_cast<std::size_t>(r + 1) * sizeof(int));
      displs.push_back(off);
      off += counts.back();
    }
    std::vector<int> mine(static_cast<std::size_t>(me + 1), me);
    std::vector<int> all(off / sizeof(int), -1);
    world.gatherv(ctx, mine.data(), mine.size() * sizeof(int), all.data(),
                  counts, displs, 2);
    if (me == 2) {
      std::size_t idx = 0;
      for (int r = 0; r < n; ++r) {
        for (int k = 0; k <= r; ++k) {
          EXPECT_EQ(all[idx++], r);
        }
      }
    }
  });
}

TEST(Mpi, ExscanMatchesPrefixSums) {
  mpi::Runtime rt(mach2(), opts(5, mpi::ExecutorKind::thread));
  std::atomic<int> bad{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const long ex = world.exscan_value(ctx, static_cast<long>(me + 1),
                                       mpi::Op::sum, -1L);
    if (me == 0) {
      if (ex != -1) ++bad;  // rank 0's buffer untouched (identity passed)
    } else {
      if (ex != static_cast<long>(me) * (me + 1) / 2) ++bad;
    }
    // Cross-check: inclusive == exclusive + own.
    const long inc = world.scan_value(ctx, static_cast<long>(me + 1),
                                      mpi::Op::sum);
    if (me > 0 && inc != ex + me + 1) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Mpi, ReduceScatterBlock) {
  mpi::Runtime rt(mach2(), opts(4, mpi::ExecutorKind::thread));
  std::atomic<int> bad{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const int n = world.size();
    // Rank r contributes vector v[j] = r + j over n*2 elements.
    std::vector<long> in(static_cast<std::size_t>(n) * 2);
    for (std::size_t j = 0; j < in.size(); ++j) {
      in[j] = me + static_cast<long>(j);
    }
    std::vector<long> out(2, -1);
    world.reduce_scatter_block(ctx, in.data(), out.data(), 2, sizeof(long),
                               mpi::make_reduce_fn<long>(mpi::Op::sum));
    // Sum over ranks of (r + j) = n*j + n(n-1)/2, my blocks are
    // j = 2*me, 2*me+1.
    for (int k = 0; k < 2; ++k) {
      const long j = 2 * me + k;
      if (out[static_cast<std::size_t>(k)] != 4 * j + 6) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Mpi, AllreduceInPlaceAliasing) {
  mpi::Runtime rt(mach2(), opts(4, mpi::ExecutorKind::thread));
  std::atomic<int> bad{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    std::vector<long> buf = {static_cast<long>(me), 10 + me};
    // sendbuf == recvbuf, the MPI_IN_PLACE pattern.
    world.allreduce(ctx, buf.data(), buf.data(), 2, sizeof(long),
                    mpi::make_reduce_fn<long>(mpi::Op::sum));
    if (buf[0] != 6 || buf[1] != 46) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Mpi, AllreduceCustomOperator) {
  mpi::Runtime rt(mach2(), opts(4, mpi::ExecutorKind::thread));
  std::atomic<int> bad{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    struct MaxLoc {
      double value;
      int rank;
    };
    const MaxLoc mine{me == 2 ? 100.0 : static_cast<double>(me), me};
    MaxLoc out{};
    std::span<const MaxLoc> in(&mine, 1);
    world.allreduce_custom(ctx, in, std::span<MaxLoc>(&out, 1),
                           [](MaxLoc& a, const MaxLoc& b) {
                             if (b.value > a.value) a = b;
                           });
    if (out.rank != 2 || out.value != 100.0) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Mpi, SplitOfSplitWorks) {
  mpi::Runtime rt(mach2(), opts(8, mpi::ExecutorKind::thread));
  std::atomic<int> bad{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    mpi::Comm& half = world.split(ctx, me / 4, me);  // two groups of 4
    mpi::Comm& quarter = half.split(ctx, half.rank(ctx) / 2, me);
    if (quarter.size() != 2) ++bad;
    const int sum = quarter.allreduce_value(ctx, me, mpi::Op::sum);
    // Partners are consecutive world ranks {0,1},{2,3},...
    if (sum != (me / 2) * 4 + 1) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Mpi, StressManyMessagesFiberBackend) {
  mpi::Options o = opts(6, mpi::ExecutorKind::fiber);
  o.fiber_workers = 2;
  mpi::Runtime rt(mach2(), o);
  std::atomic<long> total{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const int n = world.size();
    long local = 0;
    for (int round = 0; round < 20; ++round) {
      const int dst = (me + round + 1) % n;
      const int src = ((me - round - 1) % n + n) % n;
      int got = -1;
      world.sendrecv(ctx, &me, sizeof(int), dst, round, &got, sizeof(int),
                     src, round);
      local += got;
    }
    total += local;
  });
  // Every rank id was received exactly 20 times.
  EXPECT_EQ(total.load(), 20 * (0 + 1 + 2 + 3 + 4 + 5));
}
