// Failure containment: the fault injector itself, every injection site
// reachable from the public API, the error taxonomy on HlsError/ShmError,
// crash-safe process supervision, and the sync watchdog.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "check/deterministic_executor.hpp"
#include "fault/injector.hpp"
#include "hls/hls.hpp"
#include "shm/arena.hpp"
#include "shm/process_node.hpp"
#include "shm/segment.hpp"
#include "ult/scheduler.hpp"

namespace check = hlsmpc::check;
namespace fault = hlsmpc::fault;
namespace hls = hlsmpc::hls;
namespace shm = hlsmpc::shm;
namespace topo = hlsmpc::topo;
namespace ult = hlsmpc::ult;

using hlsmpc::ErrorCode;

namespace {

/// Run `n` tasks pinned to cpus 0..n-1 (the test_hls idiom).
void run_tasks(hls::Runtime& rt, int n, ult::Executor& ex,
               const std::function<void(hls::TaskView&)>& body) {
  std::vector<int> pins(static_cast<std::size_t>(n));
  std::iota(pins.begin(), pins.end(), 0);
  ex.run(n, pins, [&](ult::TaskContext& ctx) {
    hls::TaskView view(rt, ctx);
    body(view);
  });
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

}  // namespace

// ---------- error taxonomy ----------

TEST(ErrorTaxonomy, RecoverableClassification) {
  static_assert(hlsmpc::recoverable(ErrorCode::invalid_argument));
  static_assert(hlsmpc::recoverable(ErrorCode::not_eligible));
  static_assert(hlsmpc::recoverable(ErrorCode::out_of_memory));
  static_assert(hlsmpc::recoverable(ErrorCode::segment_create));
  static_assert(hlsmpc::recoverable(ErrorCode::segment_address));
  static_assert(hlsmpc::recoverable(ErrorCode::arena_exhausted));
  static_assert(hlsmpc::recoverable(ErrorCode::fork_failed));
  static_assert(!hlsmpc::recoverable(ErrorCode::task_died));
  static_assert(!hlsmpc::recoverable(ErrorCode::sync_timeout));
  static_assert(!hlsmpc::recoverable(ErrorCode::deadlock));
  static_assert(!hlsmpc::recoverable(ErrorCode::corruption));
  EXPECT_STREQ(hlsmpc::to_string(ErrorCode::arena_exhausted),
               "arena_exhausted");
  EXPECT_STREQ(hlsmpc::to_string(ErrorCode::task_died), "task_died");
}

TEST(ErrorTaxonomy, DefaultsToInvalidArgument) {
  hls::HlsError he("x");
  EXPECT_EQ(he.code(), ErrorCode::invalid_argument);
  EXPECT_TRUE(he.recoverable());
  shm::ShmError se("y");
  EXPECT_EQ(se.code(), ErrorCode::invalid_argument);
  EXPECT_TRUE(se.recoverable());
}

// ---------- the injector itself ----------

TEST(FaultInjector, UninstalledSitesAreInert) {
  ASSERT_EQ(fault::FaultInjector::global(), nullptr);
  EXPECT_FALSE(fault::should_fail("shm:mmap"));
  fault::tick_sync_point();  // no-op, must not crash
}

TEST(FaultInjector, NthHitCountdown) {
  fault::FaultInjector inj;
  inj.arm("x", /*nth=*/3);
  EXPECT_FALSE(inj.should_fail("x", -1));
  EXPECT_FALSE(inj.should_fail("x", -1));
  EXPECT_TRUE(inj.should_fail("x", -1));
  EXPECT_FALSE(inj.should_fail("x", -1));  // one-shot by default
  EXPECT_EQ(inj.hits("x"), 4u);
  EXPECT_EQ(inj.fired("x"), 1u);
  EXPECT_EQ(inj.hits("y"), 0u);
}

TEST(FaultInjector, TimesAlwaysAndDisarm) {
  fault::FaultInjector inj;
  inj.arm("x", 1, -1, /*times=*/2);
  EXPECT_TRUE(inj.should_fail("x", -1));
  EXPECT_TRUE(inj.should_fail("x", -1));
  EXPECT_FALSE(inj.should_fail("x", -1));
  inj.arm_always("y");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(inj.should_fail("y", i));
  inj.disarm("y");
  EXPECT_FALSE(inj.should_fail("y", -1));
  EXPECT_EQ(inj.fired("y"), 10u);
}

TEST(FaultInjector, IndexOperandFilters) {
  fault::FaultInjector inj;
  inj.arm("process:fork", /*nth=*/1, /*index=*/2);
  EXPECT_FALSE(inj.should_fail("process:fork", 0));
  EXPECT_FALSE(inj.should_fail("process:fork", 1));
  EXPECT_TRUE(inj.should_fail("process:fork", 2));
  EXPECT_FALSE(inj.should_fail("process:fork", 2));
  EXPECT_EQ(inj.hits("process:fork"), 4u);
  EXPECT_EQ(inj.fired("process:fork"), 1u);
}

TEST(FaultInjector, SeededModeIsAPureFunctionOfTheSeed) {
  auto sequence = [](std::uint64_t seed) {
    fault::FaultInjector inj;
    inj.seed(seed, 0.5);
    std::vector<bool> fires;
    for (int i = 0; i < 256; ++i) fires.push_back(inj.should_fail("x", -1));
    return fires;
  };
  const auto a = sequence(7);
  EXPECT_EQ(a, sequence(7));
  EXPECT_NE(a, sequence(8));
  const auto n = std::count(a.begin(), a.end(), true);
  EXPECT_GT(n, 64);  // ~128 expected at p=0.5
  EXPECT_LT(n, 192);
}

TEST(FaultInjector, SyncPointGatingWaitsForTheClock) {
  fault::FaultInjector inj;
  inj.arm_at_sync_point("x", /*sync_point=*/3);
  EXPECT_FALSE(inj.should_fail("x", -1));  // clock at 0: dormant
  inj.tick_sync_point();
  inj.tick_sync_point();
  EXPECT_FALSE(inj.should_fail("x", -1));  // clock at 2: still dormant
  inj.tick_sync_point();
  EXPECT_TRUE(inj.should_fail("x", -1));
  EXPECT_EQ(inj.sync_points(), 3u);
}

TEST(FaultInjector, DeterministicExecutorTicksTheClock) {
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  std::vector<int> pins{0, 1};
  ex.run(2, pins, [](ult::TaskContext& ctx) {
    for (int i = 0; i < 3; ++i) ctx.sync_point("test");
  });
  // 2 tasks x 3 instrumented sync edges.
  EXPECT_EQ(inj.sync_points(), 6u);
}

TEST(FaultInjector, ScopedInstallationUninstallsOnExit) {
  {
    fault::FaultInjector inj;
    fault::ScopedFaultInjection scoped(inj);
    EXPECT_EQ(fault::FaultInjector::global(), &inj);
    inj.arm_always("x");
    EXPECT_TRUE(fault::should_fail("x"));
  }
  EXPECT_EQ(fault::FaultInjector::global(), nullptr);
  EXPECT_FALSE(fault::should_fail("x"));
}

// ---------- shm injection sites ----------

TEST(FaultSites, AnonymousSegmentMmapFailure) {
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("shm:anon_mmap");
  try {
    shm::AnonymousSegment seg(1 << 16);
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::segment_create);
    EXPECT_TRUE(e.recoverable());
    EXPECT_TRUE(contains(e.what(), "mmap")) << e.what();
  }
  // One-shot arming: the retry path is open again.
  shm::AnonymousSegment ok(1 << 16);
  EXPECT_NE(ok.base(), nullptr);
}

TEST(FaultSites, NamedSegmentShmOpenFailure) {
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("shm:shm_open");
  const std::string name = shm::NamedSegment::unique_name("faultopen");
  try {
    shm::NamedSegment seg(name, 4096, nullptr, /*owner=*/true);
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::segment_create);
    EXPECT_TRUE(contains(e.what(), "shm_open")) << e.what();
  }
}

TEST(FaultSites, NamedSegmentFtruncateFailureUnlinks) {
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("shm:ftruncate");
  const std::string name = shm::NamedSegment::unique_name("faulttrunc");
  try {
    shm::NamedSegment seg(name, 4096, nullptr, /*owner=*/true);
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::segment_create);
    EXPECT_TRUE(contains(e.what(), "ftruncate")) << e.what();
  }
  // The failed create must not leak the /dev/shm entry.
  EXPECT_THROW(shm::NamedSegment(name, 4096, nullptr, /*owner=*/false),
               shm::ShmError);
}

TEST(FaultSites, NamedSegmentMmapFailure) {
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("shm:mmap");
  const std::string name = shm::NamedSegment::unique_name("faultmap");
  try {
    shm::NamedSegment seg(name, 4096, nullptr, /*owner=*/true);
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::segment_create);
  }
}

TEST(FaultSites, NamedSegmentWrongAddressIsItsOwnCode) {
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("shm:map_address");
  const std::string name = shm::NamedSegment::unique_name("faultaddr");
  void* hint = reinterpret_cast<void*>(0x7f5678900000ULL);
  try {
    shm::NamedSegment seg(name, 4096, hint, /*owner=*/true);
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::segment_address);
    EXPECT_TRUE(e.recoverable());
    EXPECT_TRUE(contains(e.what(), "address")) << e.what();
  }
}

TEST(FaultSites, ArenaExhaustionDespiteFreeSpace) {
  std::vector<std::byte> mem(1 << 16);
  shm::Arena* a = shm::Arena::create(mem.data(), mem.size());
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("arena:allocate");
  try {
    a->allocate(64);
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::arena_exhausted);
    EXPECT_TRUE(e.recoverable());
  }
  // Recoverable means exactly that: the next allocation succeeds.
  void* p = a->allocate(64);
  ASSERT_NE(p, nullptr);
  a->deallocate(p);
  EXPECT_EQ(a->bytes_used(), 0u);
}

TEST(FaultSites, StorageFirstTouchOutOfMemory) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 1);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope(), 1);
  mb.commit();
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("storage:first_touch");
  std::atomic<int> caught{0};
  std::atomic<int> ok_after{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 1, ex, [&](hls::TaskView& view) {
    try {
      view.get(v);
    } catch (const hls::HlsError& e) {
      if (e.code() == ErrorCode::out_of_memory && e.recoverable() &&
          contains(e.what(), "first-touch") &&
          contains(e.what(), "out of memory")) {
        ++caught;
      }
    }
    // Nothing was published on failure; the retry allocates cleanly.
    if (view.get(v) == 1) ++ok_after;
  });
  EXPECT_EQ(caught.load(), 1);
  EXPECT_EQ(ok_after.load(), 1);
  EXPECT_EQ(inj.fired("storage:first_touch"), 1u);
}

// ---------- public-API throw sites carry the right codes ----------

TEST(ErrorTaxonomy, RegistryMisuseIsInvalidArgument) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 2);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  hls::add_var<int>(mb, "x", topo::node_scope());
  try {
    hls::add_var<int>(mb, "x", topo::node_scope());
    FAIL() << "expected HlsError";
  } catch (const hls::HlsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_argument);
    EXPECT_TRUE(e.recoverable());
  }
  mb.commit();
  try {
    mb.commit();
    FAIL() << "expected HlsError";
  } catch (const hls::HlsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_argument);
  }
}

TEST(ErrorTaxonomy, MigrateBadCpuIsInvalidArgument) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 1);
  ult::ThreadExecutor ex;
  std::atomic<int> code_ok{0};
  run_tasks(rt, 1, ex, [&](hls::TaskView& view) {
    try {
      view.migrate(999);
    } catch (const hls::HlsError& e) {
      if (e.code() == ErrorCode::invalid_argument) ++code_ok;
    }
  });
  EXPECT_EQ(code_ok.load(), 1);
}

TEST(ErrorTaxonomy, MigrateCounterMismatchIsNotEligible) {
  topo::Machine m = topo::Machine::nehalem_ex(2);  // numa spans 8 cpus
  hls::Runtime rt(m, 8);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::numa_scope(), 0);
  mb.commit();
  std::atomic<int> code_ok{0};
  ult::ThreadExecutor ex;
  // All 8 tasks barrier on numa 0; numa 1's instance saw no episodes, so
  // the move is refused as not eligible — a retryable condition (§IV.A).
  run_tasks(rt, 8, ex, [&](hls::TaskView& view) {
    view.get(v);
    view.barrier({v.handle()});
    if (view.context().task_id() == 0) {
      try {
        view.migrate(8);
      } catch (const hls::HlsError& e) {
        if (e.code() == ErrorCode::not_eligible && e.recoverable() &&
            contains(e.what(), "episodes")) {
          ++code_ok;
        }
      }
    }
  });
  EXPECT_EQ(code_ok.load(), 1);
}

TEST(ErrorTaxonomy, ProcessNodeValidationIsInvalidArgument) {
  const topo::Machine m = topo::Machine::core2_cluster_node();
  try {
    shm::ProcessNode node(m, 99);
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_argument);
  }
}

// ---------- ProcessNode fault sites (supervision under injection) ----------

TEST(ProcessFault, ForkFailureKillsAndReapsEarlierRanks) {
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("process:fork", /*nth=*/1, /*index=*/2);
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("x", 8, topo::node_scope());
  try {
    node.run([](shm::ProcessTask& t) { t.barrier("x"); });
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::fork_failed);
    EXPECT_TRUE(e.recoverable());
    EXPECT_TRUE(contains(e.what(), "fork failed for rank 2")) << e.what();
    // Ranks 0 and 1 were already forked; both must be gone, not leaked.
    EXPECT_TRUE(contains(e.what(), "killed and reaped 2")) << e.what();
  }
}

TEST(ProcessFault, ChildKilledRightAfterForkIsNamed) {
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("process:child_exit", /*nth=*/1, /*index=*/1);
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("x", 8, topo::node_scope());
  const auto start = std::chrono::steady_clock::now();
  try {
    // Survivors head into a barrier the dead rank can never join: the
    // supervisor must abort them instead of letting waitpid hang.
    node.run([](shm::ProcessTask& t) { t.barrier("x"); });
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::task_died);
    EXPECT_FALSE(e.recoverable());
    EXPECT_TRUE(contains(e.what(), "rank 1")) << e.what();
    EXPECT_TRUE(contains(e.what(), "signal 9")) << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Well within the 30 s sync timeout: death is detected by SIGCHLD
  // supervision, not by waiting out the barrier.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(ProcessFault, CrashWhileHoldingRobustMutexRecovers) {
  fault::FaultInjector inj;
  fault::ScopedFaultInjection scoped(inj);
  inj.arm("process:barrier_locked", /*nth=*/1, /*index=*/1);
  const topo::Machine m = topo::Machine::core2_cluster_node();
  shm::ProcessNode node(m, 4);
  node.add_var("x", 8, topo::node_scope());
  const auto start = std::chrono::steady_clock::now();
  try {
    // Rank 1 dies by SIGKILL while HOLDING the barrier's process-shared
    // mutex. Survivors must take EOWNERDEAD, mark the state poisoned and
    // exit; the parent must name the dead rank.
    node.run([](shm::ProcessTask& t) { t.barrier("x"); });
    FAIL() << "expected ShmError";
  } catch (const shm::ShmError& e) {
    EXPECT_EQ(e.code(), ErrorCode::task_died);
    EXPECT_TRUE(contains(e.what(), "rank 1")) << e.what();
    EXPECT_TRUE(contains(e.what(), "signal 9")) << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

// ---------- sync watchdog ----------

TEST(Watchdog, NegativeDeadlineRejected) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  try {
    hls::Runtime rt(m, 2, hls::Runtime::Options{.watchdog_ms = -1});
    FAIL() << "expected HlsError";
  } catch (const hls::HlsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_argument);
    EXPECT_TRUE(contains(e.what(), "watchdog_ms")) << e.what();
  }
}

TEST(Watchdog, BarrierStuckNamesTheMissingTask) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 2, hls::Runtime::Options{.watchdog_ms = 50});
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope(), 0);
  mb.commit();
  std::atomic<bool> fired{false};
  std::atomic<int> diag_ok{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
    view.get(v);
    if (view.context().task_id() == 0) {
      try {
        view.barrier({v.handle()});  // task 1 never arrives
      } catch (const hls::HlsError& e) {
        const std::string what = e.what();
        if (e.code() == ErrorCode::deadlock && !e.recoverable() &&
            contains(what, "watchdog: barrier") && contains(what, "1/2") &&
            contains(what, "missing: task 1")) {
          ++diag_ok;
        } else {
          ADD_FAILURE() << what;
        }
        fired.store(true);
      }
    } else {
      while (!fired.load()) view.context().yield();
    }
  });
  EXPECT_EQ(diag_ok.load(), 1);
#if HLSMPC_OBS_ENABLED
  ASSERT_NE(rt.obs(), nullptr);
  bool event_seen = false;
  for (const hlsmpc::obs::Event& e : rt.obs()->events()) {
    if (e.kind == hlsmpc::obs::EventKind::watchdog) {
      event_seen = true;
      EXPECT_EQ(e.task, 0);
      EXPECT_GE(e.arg, 50);                 // waited at least the deadline
      EXPECT_EQ(e.arg2, std::uint64_t{2});  // missing mask = {task 1}
    }
  }
  EXPECT_TRUE(event_seen);
#endif
}

TEST(Watchdog, SingleStuckFiresInTheWaiter) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 2, hls::Runtime::Options{.watchdog_ms = 50});
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope(), 0);
  mb.commit();
  std::atomic<bool> fired{false};
  std::atomic<int> diag_ok{0};
  ult::ThreadExecutor ex;
  // Whichever task wins the single stalls inside the block; the loser's
  // completion wait must trip the watchdog rather than spin forever.
  run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
    view.get(v);
    try {
      view.single({v.handle()}, [&] {
        while (!fired.load()) view.context().yield();
      });
    } catch (const hls::HlsError& e) {
      const std::string what = e.what();
      if (e.code() == ErrorCode::deadlock &&
          contains(what, "watchdog: single")) {
        ++diag_ok;
      } else {
        ADD_FAILURE() << what;
      }
      fired.store(true);
    }
  });
  EXPECT_EQ(diag_ok.load(), 1);
}

TEST(Watchdog, FiresUnderTheDeterministicExecutor) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 2, hls::Runtime::Options{.watchdog_ms = 20});
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope(), 0);
  mb.commit();
  std::atomic<bool> fired{false};
  std::atomic<int> diag_ok{0};
  check::RoundRobinPolicy policy(1, 0);
  // Every cooperative yield is one scheduling step; 20 ms of polling can
  // consume millions, so the budget must be far above the default.
  check::DeterministicExecutor ex(policy, /*max_steps=*/50'000'000);
  run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
    view.get(v);
    if (view.context().task_id() == 0) {
      try {
        view.barrier({v.handle()});
      } catch (const hls::HlsError& e) {
        if (e.code() == ErrorCode::deadlock &&
            contains(e.what(), "missing: task 1")) {
          ++diag_ok;
        }
        fired.store(true);
      }
    } else {
      while (!fired.load()) view.context().yield();
    }
  });
  EXPECT_EQ(diag_ok.load(), 1);
}

TEST(Watchdog, OffByDefaultCompletesNormally) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  hls::Runtime rt(m, 4);
  EXPECT_EQ(rt.sync().watchdog_ms(), 0);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope(), 0);
  mb.commit();
  std::atomic<int> done{0};
  ult::ThreadExecutor ex;
  run_tasks(rt, 4, ex, [&](hls::TaskView& view) {
    for (int i = 0; i < 8; ++i) view.barrier({v.handle()});
    ++done;
  });
  EXPECT_EQ(done.load(), 4);
}
