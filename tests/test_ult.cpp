#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "ult/fiber.hpp"
#include "ult/scheduler.hpp"
#include "ult/task_context.hpp"

namespace ult = hlsmpc::ult;

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  ult::Fiber f([&] { x = 42; });
  EXPECT_TRUE(f.resume());
  EXPECT_EQ(x, 42);
  EXPECT_TRUE(f.done());
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> order;
  ult::Fiber f([&] {
    order.push_back(1);
    ult::Fiber::yield();
    order.push_back(3);
    ult::Fiber::yield();
    order.push_back(5);
  });
  EXPECT_FALSE(f.resume());
  order.push_back(2);
  EXPECT_FALSE(f.resume());
  order.push_back(4);
  EXPECT_TRUE(f.resume());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentIsSetOnlyInsideFiber) {
  EXPECT_EQ(ult::Fiber::current(), nullptr);
  ult::Fiber* observed = nullptr;
  ult::Fiber f([&] { observed = ult::Fiber::current(); });
  f.resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(ult::Fiber::current(), nullptr);
}

TEST(Fiber, ExceptionPropagatesFromResume) {
  ult::Fiber f([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.done());
}

TEST(Fiber, MisuseThrows) {
  EXPECT_THROW(ult::Fiber::yield(), std::logic_error);  // outside a fiber
  EXPECT_THROW(ult::Fiber({}, 256 * 1024), std::invalid_argument);
  EXPECT_THROW(ult::Fiber([] {}, 1024), std::invalid_argument);  // tiny stack
  ult::Fiber f([] {});
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);  // already finished
}

TEST(Scheduler, RunsAllTasks) {
  ult::Scheduler s(2);
  std::atomic<int> sum{0};
  for (int i = 0; i < 10; ++i) {
    s.spawn(i % 2, i, i, [&sum, i](ult::FiberTaskContext&) { sum += i; });
  }
  s.run();
  EXPECT_EQ(sum.load(), 45);
}

TEST(Scheduler, TasksOnSameWorkerInterleaveViaYield) {
  // Two tasks on one worker ping-pong through a shared counter; this only
  // terminates if yield() actually gives the other fiber the cpu.
  ult::Scheduler s(1);
  std::atomic<int> turn{0};
  std::vector<int> log;
  std::mutex log_mu;
  for (int me = 0; me < 2; ++me) {
    s.spawn(0, me, me, [&, me](ult::FiberTaskContext& ctx) {
      for (int round = 0; round < 3; ++round) {
        while (turn.load() % 2 != me) ctx.yield();
        {
          std::lock_guard<std::mutex> lk(log_mu);
          log.push_back(me);
        }
        turn.fetch_add(1);
      }
    });
  }
  s.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(Scheduler, TaskExceptionSurfacesFromRun) {
  ult::Scheduler s(2);
  s.spawn(0, 0, 0, [](ult::FiberTaskContext&) { throw std::runtime_error("x"); });
  s.spawn(1, 1, 1, [](ult::FiberTaskContext&) {});
  EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(Scheduler, MigrationMovesTaskToTargetWorker) {
  ult::Scheduler s(2);
  std::atomic<int> before{-1}, after{-1};
  s.spawn(0, 0, 0, [&](ult::FiberTaskContext& ctx) {
    before = ctx.target_worker();
    ctx.set_target_worker(1);
    ctx.set_cpu(1);
    ctx.yield();  // migration takes effect here
    after = ctx.target_worker();
  });
  s.run();
  EXPECT_EQ(before.load(), 0);
  EXPECT_EQ(after.load(), 1);
}

TEST(Scheduler, RejectsBadWorkerIndex) {
  ult::Scheduler s(2);
  EXPECT_THROW(s.spawn(2, 0, 0, [](ult::FiberTaskContext&) {}),
               std::out_of_range);
  EXPECT_THROW(ult::Scheduler{0}, std::invalid_argument);
}

namespace {

// Shared harness for the executor equivalence tests: all ranks increment a
// counter under a mutex and wait for everyone via wait_until.
void run_counter_rendezvous(ult::Executor& ex, int n) {
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::vector<int> pins(static_cast<std::size_t>(n));
  std::iota(pins.begin(), pins.end(), 0);
  ex.run(n, pins, [&](ult::TaskContext& ctx) {
    std::unique_lock<std::mutex> lk(mu);
    ++arrived;
    cv.notify_all();
    ult::wait_until(ctx, lk, cv, [&] { return arrived == n; });
  });
  EXPECT_EQ(arrived, n);
}

}  // namespace

TEST(Executor, ThreadBackendRendezvous) {
  ult::ThreadExecutor ex;
  run_counter_rendezvous(ex, 8);
}

TEST(Executor, FiberBackendRendezvousSingleWorker) {
  // The hardest case: 8 tasks rendezvous on ONE kernel thread. Only works
  // because cooperative wait_until yields instead of parking.
  ult::FiberExecutor ex(1);
  run_counter_rendezvous(ex, 8);
}

TEST(Executor, FiberBackendRendezvousMultiWorker) {
  ult::FiberExecutor ex(4);
  run_counter_rendezvous(ex, 16);
}

TEST(Executor, PinsAreVisibleAsCpu) {
  ult::ThreadExecutor ex;
  std::vector<int> pins = {3, 1, 4, 1};
  std::atomic<int> bad{0};
  ex.run(4, pins, [&](ult::TaskContext& ctx) {
    if (ctx.cpu() != pins[static_cast<std::size_t>(ctx.task_id())]) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Executor, PinSizeMismatchThrows) {
  ult::ThreadExecutor tex;
  ult::FiberExecutor fex(2);
  EXPECT_THROW(tex.run(3, {0, 1}, [](ult::TaskContext&) {}),
               std::invalid_argument);
  EXPECT_THROW(fex.run(3, {0, 1}, [](ult::TaskContext&) {}),
               std::invalid_argument);
}

TEST(Executor, BodyExceptionPropagates) {
  ult::ThreadExecutor ex;
  EXPECT_THROW(
      ex.run(2, {0, 1},
             [](ult::TaskContext& ctx) {
               if (ctx.task_id() == 1) throw std::runtime_error("y");
             }),
      std::runtime_error);
}
