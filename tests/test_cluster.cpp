// Simulated multi-node cluster: node-leader hierarchical collectives.
//
// The load-bearing checks:
//  - the non-commutative 2x2-matrix-over-Z1009 sweep (test_coll.cpp's
//    vocabulary) over 2..4 nodes x several ranks per node, thread and
//    fiber executors: hierarchical reduce/allreduce must fold in
//    ascending GLOBAL rank order even though the fold is factored into a
//    local tier and a leader tier;
//  - bcast from every root, allgather in global rank order, barrier;
//  - ScheduleExplorer drives a whole 2-node job through many
//    deterministic schedules (the fabric's sync points make leader
//    exchanges explorable);
//  - dead-node supervision: a killed node is detected and NAMED by every
//    surviving rank instead of deadlocking them, both for an explicit
//    kill_node and for an injected link failure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "check/deterministic_executor.hpp"
#include "check/explorer.hpp"
#include "fault/injector.hpp"
#include "mpi/mpi.hpp"
#include "obs/recorder.hpp"

namespace check = hlsmpc::check;
namespace fault = hlsmpc::fault;
namespace mpi = hlsmpc::mpi;
namespace obs = hlsmpc::obs;
using hlsmpc::ult::TaskContext;

namespace {

// ---- the non-commutative operator (same algebra as test_coll.cpp) ----

constexpr std::int64_t kMod = 1009;

struct Mat {
  std::int32_t a, b, c, d;
  friend bool operator==(const Mat&, const Mat&) = default;
};

Mat mul(const Mat& x, const Mat& y) {
  const auto m = [](std::int64_t v) {
    return static_cast<std::int32_t>(((v % kMod) + kMod) % kMod);
  };
  return Mat{
      m(static_cast<std::int64_t>(x.a) * y.a +
        static_cast<std::int64_t>(x.b) * y.c),
      m(static_cast<std::int64_t>(x.a) * y.b +
        static_cast<std::int64_t>(x.b) * y.d),
      m(static_cast<std::int64_t>(x.c) * y.a +
        static_cast<std::int64_t>(x.d) * y.c),
      m(static_cast<std::int64_t>(x.c) * y.b +
        static_cast<std::int64_t>(x.d) * y.d),
  };
}

mpi::ReduceFn mat_fn() {
  return [](void* inout, const void* in, std::size_t count) {
    Mat* x = static_cast<Mat*>(inout);
    const Mat* y = static_cast<const Mat*>(in);
    for (std::size_t i = 0; i < count; ++i) x[i] = mul(x[i], y[i]);
  };
}

Mat contrib(int r, std::size_t i) {
  return Mat{static_cast<std::int32_t>(1 + (2 * r + i) % 5),
             static_cast<std::int32_t>((r + 2 * i + 1) % 7),
             static_cast<std::int32_t>((r * r + 3 * i + 2) % 6),
             static_cast<std::int32_t>(1 + (3 * r + 2 * i) % 4)};
}

std::vector<Mat> make_contrib(int r, std::size_t count) {
  std::vector<Mat> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = contrib(r, i);
  return v;
}

/// Global-rank-order fold v_0 * v_1 * ... * v_upto.
std::vector<Mat> reference(int upto, std::size_t count) {
  std::vector<Mat> ref = make_contrib(0, count);
  for (int r = 1; r <= upto; ++r) {
    for (std::size_t i = 0; i < count; ++i) ref[i] = mul(ref[i], contrib(r, i));
  }
  return ref;
}

// Payloads straddling the shm engine's small_threshold and the eager
// threshold, so the local tier exercises its staged, zero-copy and
// rendezvous arms underneath the leader tier.
constexpr std::size_t kCounts[] = {1, 60, 65, 520};

struct Param {
  int nnodes;
  int rpn;
  mpi::ExecutorKind exec;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  return std::to_string(info.param.nnodes) + "nodes_" +
         std::to_string(info.param.rpn) + "rpn_" +
         (info.param.exec == mpi::ExecutorKind::thread ? "thread" : "fiber");
}

mpi::ClusterOptions copts(const Param& p) {
  mpi::ClusterOptions o;
  o.nnodes = p.nnodes;
  o.ranks_per_node = p.rpn;
  o.executor = p.exec;
  return o;
}

class ClusterParam : public testing::TestWithParam<Param> {
 protected:
  mpi::SimCluster cluster_{copts(GetParam())};
  int nranks_ = cluster_.nranks();
};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterParam,
    testing::Values(Param{2, 4, mpi::ExecutorKind::thread},
                    Param{3, 4, mpi::ExecutorKind::thread},
                    Param{4, 4, mpi::ExecutorKind::thread},
                    Param{3, 1, mpi::ExecutorKind::thread},
                    Param{2, 4, mpi::ExecutorKind::fiber},
                    Param{4, 2, mpi::ExecutorKind::fiber}),
    param_name);

TEST(ClusterTopology, NodeMajorRankMapping) {
  mpi::SimCluster c(copts({3, 4, mpi::ExecutorKind::thread}));
  mpi::ClusterComm& comm = c.comm();
  EXPECT_EQ(comm.size(), 12);
  EXPECT_EQ(comm.nnodes(), 3);
  EXPECT_EQ(comm.node_of(0), 0);
  EXPECT_EQ(comm.node_of(7), 1);
  EXPECT_EQ(comm.local_of(7), 3);
  EXPECT_EQ(comm.leader_of(2), 8);
  EXPECT_EQ(comm.node_comm(1).size(), 4);
  EXPECT_EQ(comm.first_dead_node(), -1);
  EXPECT_STREQ(c.fabric().name(), "sim_fabric");
}

TEST_P(ClusterParam, AllreduceFoldsInGlobalRankOrder) {
  for (std::size_t count : kCounts) {
    const std::vector<Mat> want = reference(nranks_ - 1, count);
    std::atomic<int> checked{0};
    cluster_.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
      const int g = comm.rank(ctx);
      const std::vector<Mat> in = make_contrib(g, count);
      std::vector<Mat> out(count);
      comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                     mat_fn());
      if (out == want) checked.fetch_add(1);
    });
    EXPECT_EQ(checked.load(), nranks_) << "count=" << count;
  }
}

TEST_P(ClusterParam, ReduceToEveryRootFoldsInGlobalRankOrder) {
  const std::size_t count = 65;
  const std::vector<Mat> want = reference(nranks_ - 1, count);
  std::atomic<int> checked{0};
  cluster_.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    const std::vector<Mat> in = make_contrib(g, count);
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<Mat> out(count);
      comm.reduce(ctx, in.data(), g == root ? out.data() : nullptr, count,
                  sizeof(Mat), mat_fn(), root);
      if (g == root && out == want) checked.fetch_add(1);
    }
  });
  EXPECT_EQ(checked.load(), nranks_);
}

TEST_P(ClusterParam, BcastFromEveryRoot) {
  std::atomic<int> checked{0};
  cluster_.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<Mat> buf =
          g == root ? make_contrib(root, 100) : std::vector<Mat>(100);
      comm.bcast(ctx, buf.data(), buf.size() * sizeof(Mat), root);
      if (buf == make_contrib(root, 100)) checked.fetch_add(1);
    }
  });
  EXPECT_EQ(checked.load(), nranks_ * nranks_);
}

TEST_P(ClusterParam, AllgatherOrdersBlocksByGlobalRank) {
  const std::size_t count = 33;
  std::atomic<int> checked{0};
  cluster_.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    const std::vector<Mat> in = make_contrib(g, count);
    std::vector<Mat> out(count * static_cast<std::size_t>(comm.size()));
    comm.allgather(ctx, in.data(), count * sizeof(Mat), out.data());
    bool ok = true;
    for (int r = 0; r < comm.size(); ++r) {
      const std::vector<Mat> want = make_contrib(r, count);
      for (std::size_t i = 0; i < count; ++i) {
        ok = ok && out[static_cast<std::size_t>(r) * count + i] == want[i];
      }
    }
    if (ok) checked.fetch_add(1);
  });
  EXPECT_EQ(checked.load(), nranks_);
}

TEST_P(ClusterParam, BarrierSeparatesPhases) {
  // Classic flag test: everyone writes before the barrier, everyone must
  // see all writes after it — across nodes, which is exactly what the
  // leader dissemination provides.
  std::vector<std::atomic<int>> flags(static_cast<std::size_t>(nranks_));
  for (auto& f : flags) f.store(0);
  std::atomic<int> ok{0};
  cluster_.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    flags[static_cast<std::size_t>(g)].store(1);
    comm.barrier(ctx);
    int sum = 0;
    for (auto& f : flags) sum += f.load();
    if (sum == comm.size()) ok.fetch_add(1);
  });
  EXPECT_EQ(ok.load(), nranks_);
}

TEST_P(ClusterParam, GlobalPointToPointRing) {
  std::atomic<int> ok{0};
  cluster_.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    const int n = comm.size();
    const Mat mine = contrib(g, 7);
    comm.send(ctx, &mine, sizeof(mine), (g + 1) % n, 5);
    Mat got{};
    mpi::Status st;
    comm.recv(ctx, &got, sizeof(got), mpi::kAnySource, 5, &st);
    if (st.source == (g - 1 + n) % n && st.bytes == sizeof(Mat) &&
        got == contrib(st.source, 7)) {
      ok.fetch_add(1);
    }
  });
  EXPECT_EQ(ok.load(), nranks_);
}

TEST(Cluster, ObsCountsCollectivesAndFabricTraffic) {
  obs::RecorderOptions ro;
  ro.ntasks = 8;
  obs::Recorder rec(ro);
  mpi::ClusterOptions o;
  o.nnodes = 2;
  o.ranks_per_node = 4;
  o.obs = &rec;
  mpi::SimCluster cluster(o);
  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    int v = 1, out = 0;
    comm.allreduce(ctx, &v, &out, 1, sizeof(int),
                   [](void* a, const void* b, std::size_t) {
                     *static_cast<int*>(a) += *static_cast<const int*>(b);
                   });
  });
  const obs::Snapshot s = rec.snapshot();
  // Every rank entered one cluster collective; only leaders (ranks 0 and
  // 4) touched the fabric.
  EXPECT_EQ(s.total.c[static_cast<int>(obs::Counter::coll_ops)], 8u);
  EXPECT_GT(s.total.c[static_cast<int>(obs::Counter::net_sends)], 0u);
  EXPECT_GT(s.total.c[static_cast<int>(obs::Counter::net_recvs)], 0u);
  for (int g : {1, 2, 3, 5, 6, 7}) {
    EXPECT_EQ(s.tasks[static_cast<std::size_t>(g)]
                  .c[static_cast<int>(obs::Counter::net_sends)],
              0u)
        << "non-leader rank " << g << " must not touch the fabric";
  }
}

// ---- deterministic exploration of the leader exchange ----

TEST(ClusterExplore, AllreduceSurvivesScheduleSweep) {
  const std::size_t count = 3;
  check::ExploreOptions eo;
  eo.schedules = 60;
  eo.max_steps = 200000;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res =
      explorer.explore([&](hlsmpc::ult::Executor& ex) {
        mpi::SimCluster cluster(copts({2, 2, mpi::ExecutorKind::thread}));
        const std::vector<Mat> want = reference(3, count);
        cluster.run_on(ex, [&](mpi::ClusterComm& comm, TaskContext& ctx) {
          const int g = comm.rank(ctx);
          const std::vector<Mat> in = make_contrib(g, count);
          std::vector<Mat> out(count);
          comm.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                         mat_fn());
          if (out != want) {
            throw std::runtime_error("rank " + std::to_string(g) +
                                     ": wrong fold under explored schedule");
          }
        });
      });
  EXPECT_TRUE(res.ok) << res.repro;
  EXPECT_GE(res.schedules_run, eo.schedules);
}

// ---- dead-node supervision ----

TEST(ClusterDeath, KilledNodeIsNamedNotDeadlocked) {
  // Node 1 drops off the network mid-job (the kill models the watchdog
  // declaring it). Every surviving rank — leader blocked on the fabric
  // AND co-resident non-leaders inside the local tier — must get a
  // NodeDeadError naming node 1, not a hang.
  mpi::SimCluster cluster(copts({2, 2, mpi::ExecutorKind::thread}));
  std::atomic<int> named{0};
  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    if (comm.node_of(g) == 1) {
      comm.fabric().kill_node(1);
      return;  // the node's ranks are gone
    }
    int v = 1, out = 0;
    try {
      comm.allreduce(ctx, &v, &out, 1, sizeof(int),
                     [](void* a, const void* b, std::size_t) {
                       *static_cast<int*>(a) += *static_cast<const int*>(b);
                     });
      ADD_FAILURE() << "rank " << g << " completed against a dead node";
    } catch (const mpi::NodeDeadError& e) {
      if (e.node() == 1 &&
          std::string(e.what()).find("node 1") != std::string::npos) {
        named.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(named.load(), 2);
  EXPECT_EQ(cluster.comm().first_dead_node(), 1);
  EXPECT_TRUE(cluster.fabric().node_dead(1));
  EXPECT_FALSE(cluster.fabric().node_dead(0));
}

TEST(ClusterDeath, InjectedLinkFailureDeclaresPeerDead) {
  // An armed "fabric:send" site towards endpoint 0 makes node 1's leader
  // exchange fail with a recoverable transport error; supervision must
  // escalate it to "node 0 unreachable" and every rank must see that
  // name.
  fault::FaultInjector inj;
  inj.arm_always("fabric:send", /*index=*/0);
  fault::ScopedFaultInjection scoped(inj);
  mpi::SimCluster cluster(copts({2, 2, mpi::ExecutorKind::thread}));
  std::atomic<int> named{0};
  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    int v = 1, out = 0;
    try {
      comm.allreduce(ctx, &v, &out, 1, sizeof(int),
                     [](void* a, const void* b, std::size_t) {
                       *static_cast<int*>(a) += *static_cast<const int*>(b);
                     });
    } catch (const mpi::NodeDeadError& e) {
      if (e.node() == 0) named.fetch_add(1);
    }
  });
  EXPECT_EQ(named.load(), cluster.nranks());
  EXPECT_EQ(cluster.comm().first_dead_node(), 0);
  EXPECT_GE(inj.fired("fabric:send"), 1u);
}

TEST(ClusterDeath, PoisonedFabricFailsFastOnNewTraffic) {
  mpi::SimCluster cluster(copts({2, 1, mpi::ExecutorKind::thread}));
  cluster.fabric().kill_node(1);
  std::atomic<int> named{0};
  cluster.run([&](mpi::ClusterComm& comm, TaskContext& ctx) {
    const int g = comm.rank(ctx);
    Mat m = contrib(g, 0);
    try {
      comm.send(ctx, &m, sizeof(m), 1 - g, 3);
      ADD_FAILURE() << "send on a poisoned fabric must fail";
    } catch (const mpi::NodeDeadError& e) {
      if (e.node() == 1) named.fetch_add(1);
    }
  });
  EXPECT_EQ(named.load(), 2);
}
