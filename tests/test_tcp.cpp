// TCP socket transport: cross-process delivery and dead-peer naming.
//
// These tests run the transport the way a deployment would: two real
// processes (fork) connected by a stream socket pair. The critical case
// is the paper-level fault story lifted to nodes: a peer process
// SIGKILLed mid-job must be DETECTED (EOF on its socket) and NAMED by the
// survivor's next receive — a NodeDeadError carrying the node id — well
// within the test timeout, never a hang.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <thread>

#include "mpi/tcp_transport.hpp"

namespace mpi = hlsmpc::mpi;

namespace {

class TestCtx final : public hlsmpc::ult::TaskContext {
 public:
  explicit TestCtx(int id) { set_task_id(id); }
  void yield() override { std::this_thread::yield(); }
  bool cooperative() const override { return false; }
};

void wait(hlsmpc::ult::TaskContext& ctx, mpi::Request req,
          mpi::Status* st = nullptr) {
  mpi::transport_wait(ctx, req, st);
}

mpi::TcpTransport::Options mesh2(int me, int peer_fd) {
  mpi::TcpTransport::Options o;
  o.me = me;
  o.nendpoints = 2;
  o.fds = {me == 0 ? -1 : peer_fd, me == 1 ? -1 : peer_fd};
  return o;
}

}  // namespace

TEST(TcpTransport, SelfSendAndProbeSingleProcess) {
  mpi::TcpTransport::Options o;
  o.me = 0;
  o.nendpoints = 1;
  o.fds = {-1};
  mpi::TcpTransport t(o);
  TestCtx c0(0);
  EXPECT_STREQ(t.name(), "tcp");
  const int v = 7;
  wait(c0, t.isend(c0, 0, 0, 0, &v, sizeof(v), 3, 0));
  mpi::Status st;
  ASSERT_TRUE(t.iprobe(0, mpi::kAnySource, mpi::kAnyTag, 0, &st));
  EXPECT_EQ(st.tag, 3);
  int got = 0;
  wait(c0, t.irecv(c0, 0, &got, sizeof(got), 0, 3, 0), &st);
  EXPECT_EQ(got, 7);
  EXPECT_EQ(st.bytes, sizeof(int));
}

TEST(TcpTransport, RoundTripAcrossProcesses) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = node 1. No gtest machinery here: plain logic, then _exit so
    // the parent's atexit handlers never run twice.
    ::close(sv[0]);
    int code = 0;
    {
      mpi::TcpTransport t(mesh2(1, sv[1]));
      TestCtx c(1);
      int got = 0;
      mpi::Status st;
      mpi::Request r = t.irecv(c, 1, &got, sizeof(got), 0, 11, 0);
      mpi::transport_wait(c, r, &st);
      if (got != 41 || st.source != 0 || st.tag != 11) code = 1;
      const int reply = got + 1;
      mpi::Request s = t.isend(c, 1, 0, 0, &reply, sizeof(reply), 12, 0);
      mpi::transport_wait(c, s);
    }
    _exit(code);
  }
  ::close(sv[1]);
  {
    mpi::TcpTransport t(mesh2(0, sv[0]));
    TestCtx c(0);
    const int v = 41;
    wait(c, t.isend(c, 0, 1, 1, &v, sizeof(v), 11, 0));
    int got = 0;
    mpi::Status st;
    wait(c, t.irecv(c, 0, &got, sizeof(got), 1, 12, 0), &st);
    EXPECT_EQ(got, 42);
    EXPECT_EQ(st.source, 1);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

TEST(TcpTransport, SigkilledPeerIsDetectedAndNamed) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = node 1: hold the socket open and do nothing, like a rank
    // that wedged. The parent SIGKILLs us; we must never exit on our own.
    ::close(sv[0]);
    for (;;) pause();
  }
  ::close(sv[1]);
  mpi::TcpTransport t(mesh2(0, sv[0]));
  TestCtx c(0);
  // The receive is posted while the peer is still alive — detection must
  // come from the EOF, not from a failed send.
  int got = 0;
  mpi::Request r = t.irecv(c, 0, &got, sizeof(got), 1, 0, 0);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  try {
    mpi::transport_wait(c, r);
    FAIL() << "recv from a SIGKILLed peer must fail, not complete";
  } catch (const mpi::NodeDeadError& e) {
    EXPECT_EQ(e.node(), 1);
    EXPECT_NE(std::string(e.what()).find("node 1"), std::string::npos);
  }
  EXPECT_EQ(t.first_dead_node(), 1);
  EXPECT_TRUE(t.node_dead(1));
  // The poisoned transport refuses new traffic with the same name.
  const int v = 0;
  EXPECT_THROW(t.isend(c, 0, 1, 1, &v, sizeof(v), 0, 0),
               mpi::NodeDeadError);
}
