// TCP socket transport: cross-process delivery and dead-peer naming.
//
// These tests run the transport the way a deployment would: two real
// processes (fork) connected by a stream socket pair. The critical case
// is the paper-level fault story lifted to nodes: a peer process
// SIGKILLed mid-job must be DETECTED (EOF on its socket) and NAMED by the
// survivor's next receive — a NodeDeadError carrying the node id — well
// within the test timeout, never a hang.
#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "mpi/recover.hpp"
#include "mpi/tcp_transport.hpp"

namespace mpi = hlsmpc::mpi;

namespace {

class TestCtx final : public hlsmpc::ult::TaskContext {
 public:
  explicit TestCtx(int id) { set_task_id(id); }
  void yield() override { std::this_thread::yield(); }
  bool cooperative() const override { return false; }
};

void wait(hlsmpc::ult::TaskContext& ctx, mpi::Request req,
          mpi::Status* st = nullptr) {
  mpi::transport_wait(ctx, req, st);
}

mpi::TcpTransport::Options mesh2(int me, int peer_fd) {
  mpi::TcpTransport::Options o;
  o.me = me;
  o.nendpoints = 2;
  o.fds = {me == 0 ? -1 : peer_fd, me == 1 ? -1 : peer_fd};
  return o;
}

}  // namespace

TEST(TcpTransport, SelfSendAndProbeSingleProcess) {
  mpi::TcpTransport::Options o;
  o.me = 0;
  o.nendpoints = 1;
  o.fds = {-1};
  mpi::TcpTransport t(o);
  TestCtx c0(0);
  EXPECT_STREQ(t.name(), "tcp");
  const int v = 7;
  wait(c0, t.isend(c0, 0, 0, 0, &v, sizeof(v), 3, 0));
  mpi::Status st;
  ASSERT_TRUE(t.iprobe(0, mpi::kAnySource, mpi::kAnyTag, 0, &st));
  EXPECT_EQ(st.tag, 3);
  int got = 0;
  wait(c0, t.irecv(c0, 0, &got, sizeof(got), 0, 3, 0), &st);
  EXPECT_EQ(got, 7);
  EXPECT_EQ(st.bytes, sizeof(int));
}

TEST(TcpTransport, RoundTripAcrossProcesses) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = node 1. No gtest machinery here: plain logic, then _exit so
    // the parent's atexit handlers never run twice.
    ::close(sv[0]);
    int code = 0;
    {
      mpi::TcpTransport t(mesh2(1, sv[1]));
      TestCtx c(1);
      int got = 0;
      mpi::Status st;
      mpi::Request r = t.irecv(c, 1, &got, sizeof(got), 0, 11, 0);
      mpi::transport_wait(c, r, &st);
      if (got != 41 || st.source != 0 || st.tag != 11) code = 1;
      const int reply = got + 1;
      mpi::Request s = t.isend(c, 1, 0, 0, &reply, sizeof(reply), 12, 0);
      mpi::transport_wait(c, s);
    }
    _exit(code);
  }
  ::close(sv[1]);
  {
    mpi::TcpTransport t(mesh2(0, sv[0]));
    TestCtx c(0);
    const int v = 41;
    wait(c, t.isend(c, 0, 1, 1, &v, sizeof(v), 11, 0));
    int got = 0;
    mpi::Status st;
    wait(c, t.irecv(c, 0, &got, sizeof(got), 1, 12, 0), &st);
    EXPECT_EQ(got, 42);
    EXPECT_EQ(st.source, 1);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

TEST(TcpTransport, SigkilledPeerIsDetectedAndNamed) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = node 1: hold the socket open and do nothing, like a rank
    // that wedged. The parent SIGKILLs us; we must never exit on our own.
    ::close(sv[0]);
    for (;;) pause();
  }
  ::close(sv[1]);
  mpi::TcpTransport t(mesh2(0, sv[0]));
  TestCtx c(0);
  // The receive is posted while the peer is still alive — detection must
  // come from the EOF, not from a failed send.
  int got = 0;
  mpi::Request r = t.irecv(c, 0, &got, sizeof(got), 1, 0, 0);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  try {
    mpi::transport_wait(c, r);
    FAIL() << "recv from a SIGKILLed peer must fail, not complete";
  } catch (const mpi::NodeDeadError& e) {
    EXPECT_EQ(e.node(), 1);
    EXPECT_NE(std::string(e.what()).find("node 1"), std::string::npos);
  }
  EXPECT_EQ(t.first_dead_node(), 1);
  EXPECT_TRUE(t.node_dead(1));
  // The poisoned transport refuses new traffic with the same name.
  const int v = 0;
  EXPECT_THROW(t.isend(c, 0, 1, 1, &v, sizeof(v), 0, 0),
               mpi::NodeDeadError);
}

// ---- EINTR under a signal storm ----

namespace {

std::atomic<int> g_usr1{0};
void count_usr1(int) { g_usr1.fetch_add(1, std::memory_order_relaxed); }

}  // namespace

TEST(TcpTransport, SurvivesSignalStormDuringLargeTransfer) {
  // Regression for the transport's short-write/EINTR discipline: a
  // multi-megabyte round trip while SIGUSR1 (installed WITHOUT SA_RESTART,
  // so every blocking syscall genuinely returns EINTR) hammers both the
  // sending thread and the process must deliver bit-identically — partial
  // write() and read() returns are resumed, never treated as failures.
  const std::size_t n = 4 * 1024 * 1024;
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child = node 1: echo the payload back. The storm stays in the
    // parent; the child's default SIGUSR1 disposition is never exercised.
    ::close(sv[0]);
    int code = 0;
    {
      mpi::TcpTransport t(mesh2(1, sv[1]));
      TestCtx c(1);
      std::vector<std::uint8_t> buf(n);
      mpi::Request r = t.irecv(c, 1, buf.data(), n, 0, 21, 0);
      mpi::transport_wait(c, r);
      mpi::Request s = t.isend(c, 1, 0, 0, buf.data(), n, 22, 0);
      mpi::transport_wait(c, s);
    }
    _exit(code);
  }
  ::close(sv[1]);
  struct sigaction sa {};
  sa.sa_handler = count_usr1;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately NOT SA_RESTART
  struct sigaction old {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);
  g_usr1.store(0, std::memory_order_relaxed);
  const pthread_t io_thread = pthread_self();
  std::atomic<bool> done{false};
  std::thread storm([&] {
    while (!done.load(std::memory_order_relaxed)) {
      pthread_kill(io_thread, SIGUSR1);       // the thread in full_send
      kill(getpid(), SIGUSR1);                // any thread, incl. receiver
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  {
    mpi::TcpTransport t(mesh2(0, sv[0]));
    TestCtx c(0);
    std::vector<std::uint8_t> in(n), out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<std::uint8_t>(i * 131 + 17);
    }
    wait(c, t.isend(c, 0, 1, 1, in.data(), n, 21, 0));
    wait(c, t.irecv(c, 0, out.data(), n, 1, 22, 0));
    EXPECT_EQ(in, out);
    done.store(true, std::memory_order_relaxed);
    storm.join();
  }
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);
  EXPECT_GT(g_usr1.load(std::memory_order_relaxed), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  EXPECT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
}

#if HLSMPC_RECOVERY_ENABLED

// ---- shrink agreement + survivor collective over the real socket mesh ----

namespace recover = mpi::recover;

namespace {

// Non-commutative 2x2 matrices over Z_1009 (test_coll.cpp's algebra): the
// survivor allreduce must produce the exact ascending-node fold.
constexpr std::int64_t kMod = 1009;

struct Mat {
  std::int32_t a, b, c, d;
  friend bool operator==(const Mat&, const Mat&) = default;
};

Mat mul(const Mat& x, const Mat& y) {
  const auto m = [](std::int64_t v) {
    return static_cast<std::int32_t>(((v % kMod) + kMod) % kMod);
  };
  return Mat{
      m(static_cast<std::int64_t>(x.a) * y.a +
        static_cast<std::int64_t>(x.b) * y.c),
      m(static_cast<std::int64_t>(x.a) * y.b +
        static_cast<std::int64_t>(x.b) * y.d),
      m(static_cast<std::int64_t>(x.c) * y.a +
        static_cast<std::int64_t>(x.d) * y.c),
      m(static_cast<std::int64_t>(x.c) * y.b +
        static_cast<std::int64_t>(x.d) * y.d),
  };
}

mpi::ReduceFn mat_fn() {
  return [](void* inout, const void* in, std::size_t count) {
    Mat* x = static_cast<Mat*>(inout);
    const Mat* y = static_cast<const Mat*>(in);
    for (std::size_t i = 0; i < count; ++i) x[i] = mul(x[i], y[i]);
  };
}

Mat contrib(int node, std::size_t i) {
  return Mat{static_cast<std::int32_t>(1 + (2 * node + i) % 5),
             static_cast<std::int32_t>((node + 2 * i + 1) % 7),
             static_cast<std::int32_t>((node * node + 3 * i + 2) % 6),
             static_cast<std::int32_t>(1 + (3 * node + 2 * i) % 4)};
}

std::vector<Mat> make_contrib(int node, std::size_t count) {
  std::vector<Mat> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = contrib(node, i);
  return v;
}

std::vector<Mat> reference_over(const std::vector<int>& nodes,
                                std::size_t count) {
  std::vector<Mat> ref = make_contrib(nodes.front(), count);
  for (std::size_t k = 1; k < nodes.size(); ++k) {
    for (std::size_t i = 0; i < count; ++i) {
      ref[i] = mul(ref[i], contrib(nodes[k], i));
    }
  }
  return ref;
}

/// Pre-connected full mesh over socketpairs, built BEFORE forking so every
/// process shares the pairs. ends[i][j] = the fd node i uses towards j.
struct FullMesh {
  static constexpr int kMax = 4;
  int n;
  int ends[kMax][kMax];

  explicit FullMesh(int n_) : n(n_) {
    for (auto& row : ends) {
      for (int& f : row) f = -1;
    }
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        int sv[2];
        if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) abort();
        ends[i][j] = sv[0];
        ends[j][i] = sv[1];
      }
    }
  }

  /// Keep node `me`'s row for its transport; close this process's copies
  /// of every other end (EOF needs all copies of a peer end closed).
  std::vector<int> adopt(int me) {
    std::vector<int> mine(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (ends[i][j] < 0) continue;
        if (i == me) {
          mine[static_cast<std::size_t>(j)] = ends[i][j];
        } else {
          ::close(ends[i][j]);
        }
        ends[i][j] = -1;
      }
    }
    return mine;
  }

  /// A node that dies before the episode: drop every copy.
  void close_all() {
    for (auto& row : ends) {
      for (int& f : row) {
        if (f >= 0) ::close(f);
        f = -1;
      }
    }
  }
};

/// One survivor's whole episode: shrink agreement over the mesh, then a
/// non-commutative allreduce on the shrunken membership. Returns 0 on
/// success, a small positive code naming the failed check (children can't
/// use gtest).
int run_mesh_survivor(FullMesh& mesh, int me, int dead_node) {
  constexpr std::size_t kCount = 5;
  std::vector<int> members;
  std::vector<int> expect_live;
  for (int i = 0; i < mesh.n; ++i) {
    members.push_back(i);
    if (i != dead_node) expect_live.push_back(i);
  }
  mpi::TcpTransport::Options o;
  o.me = me;
  o.nendpoints = mesh.n;
  o.fds = mesh.adopt(me);
  mpi::TcpTransport t(o);
  TestCtx c(me);
  // Make the death POSITIVELY known before the episode, the way the
  // ClusterComm driver guarantees via its verdict gates: a normal-context
  // receive from the dead node must be failed by its EOF and name it.
  // (Entering the agreement with skewed suspicion would let one survivor
  // burn an attempt that another doesn't, and the per-round deadlines
  // would then falsely exclude the slower one.)
  int probe = 0;
  try {
    mpi::Request r = t.irecv(c, me, &probe, sizeof(probe), dead_node, 99, 0);
    mpi::transport_wait(c, r);
    return 6;
  } catch (const mpi::NodeDeadError&) {
  }
  if (!t.node_dead(dead_node)) return 7;
  recover::TcpRecoveryChannel ch(t);
  recover::ShrinkConfig cfg;
  cfg.epoch = 1;
  recover::ShrinkDecision d;
  try {
    d = recover::shrink_agree(c, ch, me, members, cfg);
  } catch (const mpi::MpiError&) {
    return 1;
  }
  if (d.dead_mask != (std::uint64_t{1} << dead_node)) return 2;
  if (d.live != expect_live) return 3;
  t.heal(d.dead_mask);
  std::vector<Mat> buf = make_contrib(me, kCount);
  try {
    recover::survivor_allreduce(c, ch, me, d.live, buf.data(), kCount,
                                sizeof(Mat), mat_fn(), /*tag=*/64);
  } catch (const mpi::MpiError&) {
    return 4;
  }
  if (buf != reference_over(expect_live, kCount)) return 5;
  return 0;
}

}  // namespace

TEST(TcpRecover, MeshShrinkAgreementExcludesDeadNode) {
  // Four real processes on a full socket mesh; node 3 dies before the
  // episode. Survivors 0..2 must agree on exactly {dead=3}, and the
  // non-commutative allreduce on the shrunken membership must produce the
  // ascending fold over nodes 0,1,2 — on every survivor.
  FullMesh mesh(4);
  pid_t kids[3];
  for (int node = 1; node <= 3; ++node) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      if (node == 3) {
        mesh.close_all();
        _exit(0);
      }
      _exit(run_mesh_survivor(mesh, node, /*dead_node=*/3));
    }
    kids[node - 1] = pid;
  }
  EXPECT_EQ(run_mesh_survivor(mesh, 0, /*dead_node=*/3), 0);
  for (int i = 0; i < 3; ++i) {
    int wstatus = 0;
    ASSERT_EQ(waitpid(kids[i], &wstatus, 0), kids[i]);
    EXPECT_TRUE(WIFEXITED(wstatus));
    EXPECT_EQ(WEXITSTATUS(wstatus), 0) << "child node " << i + 1;
  }
}

TEST(TcpRecover, CoordinatorFailoverElectsNextSurvivor) {
  // The dead node is 0 — the member every attempt would elect coordinator
  // if it were alive. The agreement must skip it, elect node 1, and still
  // converge on {dead=0} with a working survivor pair.
  FullMesh mesh(3);
  pid_t kids[2];
  for (int node = 0; node < 3; ++node) {
    if (node == 1) continue;  // the parent plays node 1
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      if (node == 0) {
        mesh.close_all();
        _exit(0);
      }
      _exit(run_mesh_survivor(mesh, node, /*dead_node=*/0));
    }
    kids[node == 0 ? 0 : 1] = pid;
  }
  EXPECT_EQ(run_mesh_survivor(mesh, 1, /*dead_node=*/0), 0);
  for (int i = 0; i < 2; ++i) {
    int wstatus = 0;
    ASSERT_EQ(waitpid(kids[i], &wstatus, 0), kids[i]);
    EXPECT_TRUE(WIFEXITED(wstatus));
    EXPECT_EQ(WEXITSTATUS(wstatus), 0) << "child " << i;
  }
}

#endif  // HLSMPC_RECOVERY_ENABLED
