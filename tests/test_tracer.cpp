// End-to-end automatic HLS-eligibility detection: run real MPI programs
// with a RuntimeTracer attached and check the advice (the paper's
// future-work tool, conclusion + §III).
#include <gtest/gtest.h>

#include <atomic>

#include "hb/runtime_tracer.hpp"
#include "mpi/runtime.hpp"
#include "topo/topology.hpp"

namespace mpi = hlsmpc::mpi;
namespace hb = hlsmpc::hb;
namespace topo = hlsmpc::topo;
using hlsmpc::ult::TaskContext;

namespace {

mpi::Runtime make_rt(int n) {
  mpi::Options o;
  o.nranks = n;
  return mpi::Runtime(topo::Machine::nehalem_ex(1), o);
}

}  // namespace

TEST(RuntimeTracer, RecordsP2pSynchronization) {
  mpi::Runtime rt = make_rt(2);
  hb::RuntimeTracer tracer(2);
  rt.set_trace_hook(&tracer);
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    if (me == 0) {
      tracer.on_write(0, "x", 7);
      world.send_value(ctx, 7, 1, 3);
    } else {
      (void)world.recv_value<int>(ctx, 0, 3);
      tracer.on_read(1, "x", 7);
    }
  });
  rt.set_trace_hook(nullptr);

  const hb::Trace trace = tracer.trace();
  // write, send | recv, read
  ASSERT_EQ(trace.events().size(), 4u);
  hb::Analyzer analyzer(trace);
  // The write happens before the read through the message.
  const auto& order0 = trace.program_order(0);
  const auto& order1 = trace.program_order(1);
  EXPECT_TRUE(analyzer.happens_before(order0[0], order1[1]));
  const auto result = analyzer.analyze();
  EXPECT_EQ(result.for_var("x").eligibility, hb::Eligibility::eligible);
}

TEST(RuntimeTracer, CollectivesSynchronizeThroughTheirMessages) {
  // A barrier collective is implemented over p2p; the tracer must capture
  // enough of its structure that writes before it happen-before reads
  // after it on every rank.
  constexpr int kRanks = 4;
  mpi::Runtime rt = make_rt(kRanks);
  hb::RuntimeTracer tracer(kRanks);
  rt.set_trace_hook(&tracer);
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    tracer.on_write(me, "table", 42);  // everyone writes the same value
    world.barrier(ctx);
    tracer.on_read(me, "table", 42);
  });
  rt.set_trace_hook(nullptr);

  const auto advice = tracer.advise();
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].recommendation, hb::Recommendation::share_as_is)
      << advice[0].text;
}

TEST(RuntimeTracer, DetectsRankDependentVariable) {
  constexpr int kRanks = 4;
  mpi::Runtime rt = make_rt(kRanks);
  hb::RuntimeTracer tracer(kRanks);
  rt.set_trace_hook(&tracer);
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    tracer.on_write(me, "my_rank", me);
    world.barrier(ctx);
    tracer.on_read(me, "my_rank", me);
  });
  rt.set_trace_hook(nullptr);

  const auto advice = tracer.advise();
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].recommendation, hb::Recommendation::keep_private);
  EXPECT_FALSE(advice[0].spmd_identical_writes);
}

TEST(RuntimeTracer, DetectsSpmdUpdatePattern) {
  // The listing-1 pattern: every rank recomputes the variable identically
  // each step with no separating barrier -> advise single insertion.
  constexpr int kRanks = 3;
  mpi::Runtime rt = make_rt(kRanks);
  hb::RuntimeTracer tracer(kRanks);
  rt.set_trace_hook(&tracer);
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (int step = 1; step <= 2; ++step) {
      tracer.on_write(me, "cfg", step * 10);
      tracer.on_read(me, "cfg", step * 10);
    }
  });
  rt.set_trace_hook(nullptr);

  const auto advice = tracer.advise();
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].recommendation,
            hb::Recommendation::wrap_writes_in_single);
}

TEST(RuntimeTracer, SendrecvRingIsCaptured) {
  constexpr int kRanks = 4;
  mpi::Runtime rt = make_rt(kRanks);
  hb::RuntimeTracer tracer(kRanks);
  rt.set_trace_hook(&tracer);
  std::atomic<int> sum{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    int got = -1;
    world.sendrecv(ctx, &me, sizeof(int), (me + 1) % kRanks, 0, &got,
                   sizeof(int), (me + 3) % kRanks, 0);
    sum += got;
  });
  rt.set_trace_hook(nullptr);
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
  // One send + one recv per rank.
  EXPECT_EQ(tracer.num_events(), 2u * kRanks);
  // The trace replays cleanly (all recvs matched).
  EXPECT_NO_THROW(hb::Analyzer{tracer.trace()});
}

TEST(RuntimeTracer, NumEventsCountsAppAndRuntimeEvents) {
  mpi::Runtime rt = make_rt(2);
  hb::RuntimeTracer tracer(2);
  rt.set_trace_hook(&tracer);
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    tracer.on_write(world.rank(ctx), "v", 1);
  });
  rt.set_trace_hook(nullptr);
  EXPECT_EQ(tracer.num_events(), 2u);
  EXPECT_THROW(hb::RuntimeTracer{0}, hlsmpc::hls::HlsError);
}
