#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>
#include "hb/advisor.hpp"
#include "hb/analyzer.hpp"
#include "hb/trace.hpp"

namespace hb = hlsmpc::hb;

TEST(Trace, ProgramOrderAndVariables) {
  hb::Trace t(2);
  t.write(0, "x", 1);
  t.read(1, "y", 0);
  t.read(0, "x", 1);
  EXPECT_EQ(t.program_order(0).size(), 2u);
  EXPECT_EQ(t.program_order(1).size(), 1u);
  EXPECT_EQ(t.variables(), (std::vector<std::string>{"x", "y"}));
  EXPECT_THROW(t.read(5, "x", 0), hlsmpc::hls::HlsError);
  EXPECT_THROW(t.send(0, 9), hlsmpc::hls::HlsError);
  EXPECT_THROW(hb::Trace(0), hlsmpc::hls::HlsError);
}

TEST(Analyzer, ProgramOrderIsHappensBefore) {
  hb::Trace t(1);
  t.write(0, "x", 1);
  t.read(0, "x", 1);
  hb::Analyzer a(t);
  EXPECT_TRUE(a.happens_before(0, 1));
  EXPECT_FALSE(a.happens_before(1, 0));
  EXPECT_FALSE(a.happens_before(0, 0));
}

TEST(Analyzer, SendRecvCreatesEdge) {
  // The paper's §III.A example: a();send || recv;d() gives a < d, and
  // c || b, c || d.
  hb::Trace t(2);
  t.write(0, "a_marker", 1);  // a()  (event 0)
  t.send(0, 1);               // event 1
  t.write(0, "c_marker", 1);  // c()  (event 2)
  t.write(1, "b_marker", 1);  // b()  (event 3)
  t.recv(1, 0);               // event 4
  t.write(1, "d_marker", 1);  // d()  (event 5)
  hb::Analyzer a(t);
  EXPECT_TRUE(a.happens_before(0, 5));   // a < d
  EXPECT_TRUE(a.parallel(2, 3));         // c || b
  EXPECT_TRUE(a.parallel(2, 5));         // c || d
  EXPECT_TRUE(a.happens_before(0, 2));   // a < c (program order)
  EXPECT_TRUE(a.happens_before(3, 5));   // b < d
  EXPECT_FALSE(a.happens_before(5, 0));
}

TEST(Analyzer, BarrierOrdersAcrossTasks) {
  hb::Trace t(3);
  t.write(0, "x", 1);  // event 0
  t.barrier();         // events 1,2,3
  t.read(1, "x", 1);   // event 4
  hb::Analyzer a(t);
  EXPECT_TRUE(a.happens_before(0, 4));
  EXPECT_FALSE(a.happens_before(4, 0));
}

TEST(Analyzer, UnmatchedRecvIsRejected) {
  hb::Trace t(2);
  t.recv(1, 0);
  EXPECT_THROW(hb::Analyzer{t}, hlsmpc::hls::HlsError);
}

TEST(Analyzer, TagsMatchSelectively) {
  hb::Trace t(2);
  t.send(0, 1, /*tag=*/7);
  t.write(0, "x", 5);
  t.send(0, 1, /*tag=*/8);
  t.recv(1, 0, /*tag=*/7);
  t.recv(1, 0, /*tag=*/8);
  t.read(1, "x", 5);
  hb::Analyzer a(t);
  // write(x) precedes send(tag 8) which precedes recv(tag 8).
  EXPECT_TRUE(a.happens_before(1, 5));
}

// ---- eligibility (paper §III.B / §III.C) ----

TEST(Eligibility, ReadOnlyTableIsEligible) {
  // Every task writes its own copy the same way, then only reads. With a
  // barrier between init and reads, the writes are last-writes with the
  // read's value -> coherent.
  hb::Trace t(4);
  for (int task = 0; task < 4; ++task) t.write(task, "table", 42);
  t.barrier();
  for (int task = 0; task < 4; ++task) t.read(task, "table", 42);
  const auto result = hb::Analyzer(t).analyze();
  EXPECT_EQ(result.for_var("table").eligibility, hb::Eligibility::eligible);
}

TEST(Eligibility, ParallelWriteSameValueIsEligible) {
  // Writes happen in parallel with reads but write the identical value:
  // condition (1) holds.
  hb::Trace t(2);
  t.write(0, "x", 7);
  t.read(1, "x", 7);
  const auto result = hb::Analyzer(t).analyze();
  EXPECT_EQ(result.for_var("x").eligibility, hb::Eligibility::eligible);
}

TEST(Eligibility, RankDependentValueCannotBeSharedAsIs) {
  // Each task writes its rank: reads of the private copies return
  // different values, so the variable is not coherent. Condition (3) is
  // only *necessary* (paper §III.C): some candidate write has the right
  // value, so the analyzer reports needs_synchronization and leaves the
  // final verdict to the advisor (which rejects it: not SPMD-identical).
  hb::Trace t(2);
  t.write(0, "rank", 0);
  t.write(1, "rank", 1);
  t.barrier();
  t.read(0, "rank", 0);
  t.read(1, "rank", 1);
  const auto result = hb::Analyzer(t).analyze();
  EXPECT_EQ(result.for_var("rank").eligibility,
            hb::Eligibility::needs_synchronization);
  EXPECT_EQ(result.for_var("rank").incoherent_reads.size(), 2u);
}

TEST(Eligibility, SpmdRewriteNeedsSynchronization) {
  // Both tasks write the same evolving sequence but without barriers
  // between a write and the other task's read: a parallel write with a
  // different value violates condition (1), yet condition (3) holds (the
  // program-order write has the right value), so singles can fix it.
  hb::Trace t(2);
  t.write(0, "v", 1);
  t.read(0, "v", 1);
  t.write(0, "v", 2);
  t.read(0, "v", 2);
  t.write(1, "v", 1);
  t.read(1, "v", 1);
  t.write(1, "v", 2);
  t.read(1, "v", 2);
  const auto result = hb::Analyzer(t).analyze();
  EXPECT_EQ(result.for_var("v").eligibility,
            hb::Eligibility::needs_synchronization);
}

TEST(Eligibility, StaleLastWriteIsCaught) {
  // Task 0 updates x to 9 then signals task 1, but task 1's read still
  // expects the old private value 5: under sharing it would see 9.
  hb::Trace t(2);
  t.write(0, "x", 5);
  t.write(1, "x", 5);
  t.barrier();
  t.write(0, "x", 9);
  t.send(0, 1);
  t.recv(1, 0);
  t.read(1, "x", 5);  // stale under sharing: last write (9) differs
  const auto result = hb::Analyzer(t).analyze();
  EXPECT_EQ(result.for_var("x").eligibility, hb::Eligibility::ineligible);
  EXPECT_EQ(result.for_var("x").incoherent_reads.size(), 1u);
}

TEST(Eligibility, InterveningWriteScreensOldWrites)
{
  // write(1) < write(2) < read(2): only the *last* write matters
  // (condition 2's screening), so the old value 1 does not disqualify.
  hb::Trace t(1);
  t.write(0, "x", 1);
  t.write(0, "x", 2);
  t.read(0, "x", 2);
  const auto result = hb::Analyzer(t).analyze();
  EXPECT_EQ(result.for_var("x").eligibility, hb::Eligibility::eligible);
}

// ---- property sweep: vector clocks vs brute-force reachability ----

namespace {

/// Reference happens-before: explicit edge list + BFS reachability.
class ReferenceHb {
 public:
  explicit ReferenceHb(const hb::Trace& trace) {
    const auto& events = trace.events();
    adj_.resize(events.size());
    // Program order.
    for (int t = 0; t < trace.ntasks(); ++t) {
      const auto& order = trace.program_order(t);
      for (std::size_t i = 1; i < order.size(); ++i) {
        adj_[static_cast<std::size_t>(order[i - 1])].push_back(order[i]);
      }
    }
    // Send -> recv matching (k-th send to k-th recv per channel).
    std::map<std::tuple<int, int, long>, std::vector<int>> sends, recvs;
    for (const hb::Event& e : events) {
      if (e.kind == hb::EventKind::send) {
        sends[{e.task, e.peer, e.tag}].push_back(e.id);
      }
      if (e.kind == hb::EventKind::recv) {
        recvs[{e.peer, e.task, e.tag}].push_back(e.id);
      }
    }
    for (auto& [key, ss] : sends) {
      const auto& rr = recvs[key];
      for (std::size_t k = 0; k < ss.size() && k < rr.size(); ++k) {
        adj_[static_cast<std::size_t>(ss[k])].push_back(rr[k]);
      }
    }
    // Barrier waves: wave events mutually connect via a fan-in/fan-out
    // virtual node; emulate with edges from every wave member to every
    // other wave member's successors... simplest faithful model: every
    // barrier event of a wave gets edges to all barrier events of the
    // same wave (creating a clique) minus self; reachability THROUGH the
    // clique matches "before any barrier member < after any member".
    std::map<int, std::vector<int>> waves;
    for (const hb::Event& e : events) {
      if (e.kind == hb::EventKind::barrier) {
        waves[e.barrier_id].push_back(e.id);
      }
    }
    for (auto& [wave, members] : waves) {
      for (int a : members) {
        for (int b : members) {
          if (a != b) adj_[static_cast<std::size_t>(a)].push_back(b);
        }
      }
    }
  }

  bool reaches(int a, int b) const {
    if (a == b) return false;
    std::vector<bool> seen(adj_.size(), false);
    std::vector<int> stack = {a};
    seen[static_cast<std::size_t>(a)] = true;
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      for (int nxt : adj_[static_cast<std::size_t>(cur)]) {
        if (nxt == b) return true;
        if (!seen[static_cast<std::size_t>(nxt)]) {
          seen[static_cast<std::size_t>(nxt)] = true;
          stack.push_back(nxt);
        }
      }
    }
    return false;
  }

 private:
  std::vector<std::vector<int>> adj_;
};

hb::Trace random_trace(std::uint64_t seed, int ntasks, int events_per_task) {
  hb::Trace trace(ntasks);
  auto next = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return seed >> 33;
  };
  // Build per-task scripts; sends are generated first and recvs consume
  // them so the trace always replays (matched channels).
  struct Pending {
    int from, to;
    long tag;
  };
  std::vector<std::vector<Pending>> inbox(static_cast<std::size_t>(ntasks));
  for (int round = 0; round < events_per_task; ++round) {
    for (int t = 0; t < ntasks; ++t) {
      switch (next() % 5) {
        case 0:
          trace.write(t, "v" + std::to_string(next() % 2),
                      static_cast<long>(next() % 3));
          break;
        case 1:
          trace.read(t, "v" + std::to_string(next() % 2),
                     static_cast<long>(next() % 3));
          break;
        case 2: {
          const int to = static_cast<int>(next()) % ntasks;
          if (to != t) {
            const long tag = static_cast<long>(next() % 3);
            trace.send(t, to, tag);
            inbox[static_cast<std::size_t>(to)].push_back({t, to, tag});
          }
          break;
        }
        case 3: {
          auto& box = inbox[static_cast<std::size_t>(t)];
          if (!box.empty()) {
            // Consume the OLDEST pending message from some sender: FIFO
            // per channel keeps matching consistent.
            const Pending p = box.front();
            box.erase(box.begin());
            trace.recv(t, p.from, p.tag);
          }
          break;
        }
        case 4:
          if (t == 0 && next() % 4 == 0) trace.barrier();
          break;
      }
    }
  }
  // Drain remaining matched messages so the replay terminates.
  for (int t = 0; t < ntasks; ++t) {
    for (const Pending& p : inbox[static_cast<std::size_t>(t)]) {
      trace.recv(t, p.from, p.tag);
    }
  }
  return trace;
}

}  // namespace

class HbModelSweep : public testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, HbModelSweep,
                         testing::Values(1u, 7u, 42u, 1234u, 98765u));

TEST_P(HbModelSweep, VectorClocksMatchGraphReachability) {
  const hb::Trace trace = random_trace(GetParam(), 3, 12);
  hb::Analyzer analyzer(trace);
  ReferenceHb ref(trace);
  const int n = static_cast<int>(trace.events().size());
  int disagreements = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      const auto& ea = trace.events()[static_cast<std::size_t>(a)];
      const auto& eb = trace.events()[static_cast<std::size_t>(b)];
      // Barrier-event pairs of one wave are defined as unordered by the
      // analyzer; the clique reference marks them mutually reachable.
      if (ea.kind == hb::EventKind::barrier &&
          eb.kind == hb::EventKind::barrier &&
          ea.barrier_id == eb.barrier_id) {
        continue;
      }
      if (analyzer.happens_before(a, b) != ref.reaches(a, b)) {
        ++disagreements;
        EXPECT_EQ(analyzer.happens_before(a, b), ref.reaches(a, b))
            << "events " << a << " -> " << b;
        if (disagreements > 3) return;  // don't spam
      }
    }
  }
  EXPECT_EQ(disagreements, 0);
}

// ---- advisor (paper §III.C single insertion) ----

TEST(Advisor, RecommendsSingleForSpmdWrites) {
  hb::Trace t(3);
  for (int step = 1; step <= 2; ++step) {
    for (int task = 0; task < 3; ++task) t.write(task, "cfg", step * 10);
    for (int task = 0; task < 3; ++task) t.read(task, "cfg", step * 10);
  }
  const auto advice = hb::Advisor::advise(t);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_TRUE(advice[0].spmd_identical_writes);
  EXPECT_EQ(advice[0].recommendation,
            hb::Recommendation::wrap_writes_in_single);
}

TEST(Advisor, RecommendsShareAsIsForCoherentVar) {
  hb::Trace t(2);
  t.write(0, "c", 3);
  t.write(1, "c", 3);
  t.barrier();
  t.read(0, "c", 3);
  t.read(1, "c", 3);
  const auto advice = hb::Advisor::advise(t);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].recommendation, hb::Recommendation::share_as_is);
}

TEST(Advisor, KeepsRankDependentDataPrivate) {
  hb::Trace t(2);
  t.write(0, "r", 0);
  t.write(1, "r", 1);
  t.barrier();
  t.read(0, "r", 0);
  t.read(1, "r", 1);
  const auto advice = hb::Advisor::advise(t);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].recommendation, hb::Recommendation::keep_private);
  EXPECT_FALSE(advice[0].spmd_identical_writes);
}

TEST(Advisor, MixedVariablesGetSeparateAdvice) {
  hb::Trace t(2);
  // "table": constant, eligible. "rank": private. Interleaved.
  t.write(0, "table", 100);
  t.write(1, "table", 100);
  t.write(0, "rank", 0);
  t.write(1, "rank", 1);
  t.barrier();
  t.read(0, "table", 100);
  t.read(1, "rank", 1);
  const auto advice = hb::Advisor::advise(t);
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_EQ(advice[0].var, "rank");
  EXPECT_EQ(advice[0].recommendation, hb::Recommendation::keep_private);
  EXPECT_EQ(advice[1].var, "table");
  EXPECT_EQ(advice[1].recommendation, hb::Recommendation::share_as_is);
}
