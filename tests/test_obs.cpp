// Tests for the observability layer (src/obs/): recorder counters and
// event rings, sink chaining, exporters (snapshot JSON, Chrome trace),
// runtime instrumentation counts, the consolidated directive surface
// (ScopeSet, single_nowait on a bound task), and — via the
// deterministic schedule explorer — that episode counters are invariant
// across task interleavings.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/deterministic_executor.hpp"
#include "check/explorer.hpp"
#include "hb/runtime_tracer.hpp"
#include "hls/hls.hpp"
#include "mpc/node.hpp"

namespace check = hlsmpc::check;
namespace hb = hlsmpc::hb;
namespace hls = hlsmpc::hls;
namespace mpc = hlsmpc::mpc;
namespace mpi = hlsmpc::mpi;
namespace obs = hlsmpc::obs;
namespace topo = hlsmpc::topo;
namespace ult = hlsmpc::ult;

namespace {

/// Run `n` tasks pinned to cpus 0..n-1 on a deterministic executor.
void run_tasks(hls::Runtime& rt, int n, ult::Executor& ex,
               const std::function<void(hls::TaskView&)>& body) {
  std::vector<int> pins(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pins[static_cast<std::size_t>(i)] = i;
  ex.run(n, pins, [&](ult::TaskContext& ctx) {
    hls::TaskView view(rt, ctx);
    body(view);
  });
}

obs::Event make_event(obs::EventKind kind, int task, std::uint64_t t0,
                      std::uint64_t t1) {
  obs::Event e;
  e.kind = kind;
  e.task = task;
  e.t0 = t0;
  e.t1 = t1;
  return e;
}

/// Sink that remembers every event it saw.
struct CollectingSink final : obs::Sink {
  std::vector<obs::Event> seen;
  void on_event(const obs::Event& e) override { seen.push_back(e); }
};

}  // namespace

// ---------- recorder: counters ----------

TEST(ObsRecorder, CountersAggregateAcrossTasks) {
  obs::Recorder rec({.ntasks = 3, .num_scopes = 0, .ring_capacity = 0});
  rec.count(0, obs::Counter::barrier_entries);
  rec.count(0, obs::Counter::barrier_entries);
  rec.count(2, obs::Counter::barrier_entries, 5);
  rec.count(1, obs::Counter::single_wins);
  // Out-of-range tasks are ignored, not UB.
  rec.count(-1, obs::Counter::single_wins);
  rec.count(99, obs::Counter::single_wins);

  EXPECT_EQ(rec.counter(0, obs::Counter::barrier_entries), 2u);
  EXPECT_EQ(rec.counter(2, obs::Counter::barrier_entries), 5u);
  EXPECT_EQ(rec.counter(99, obs::Counter::barrier_entries), 0u);

  const obs::Snapshot s = rec.snapshot();
  ASSERT_EQ(s.tasks.size(), 3u);
  EXPECT_EQ(s.value(obs::Counter::barrier_entries), 7u);
  EXPECT_EQ(s.value(obs::Counter::single_wins), 1u);
  EXPECT_EQ(s.tasks[1].value(obs::Counter::single_wins), 1u);
}

TEST(ObsRecorder, ScopeBytesPerDenseId) {
  obs::Recorder rec({.ntasks = 2, .num_scopes = 4, .ring_capacity = 0});
  rec.count_scope_bytes(0, 1, 256);
  rec.count_scope_bytes(1, 1, 256);
  rec.count_scope_bytes(0, 3, 64);
  rec.count_scope_bytes(0, 7, 1);  // out of range: ignored

  const obs::Snapshot s = rec.snapshot();
  ASSERT_EQ(s.total.scope_bytes.size(), 4u);
  EXPECT_EQ(s.total.scope_bytes[1], 512u);
  EXPECT_EQ(s.total.scope_touches[1], 2u);
  EXPECT_EQ(s.total.scope_bytes[3], 64u);
  EXPECT_EQ(s.total.scope_bytes[0], 0u);
}

// ---------- recorder: event rings ----------

TEST(ObsRecorder, RingRetainsNewestAndCountsDrops) {
  obs::Recorder rec({.ntasks = 1, .num_scopes = 0, .ring_capacity = 4});
  for (int i = 0; i < 10; ++i) {
    rec.record(make_event(obs::EventKind::barrier, 0,
                          static_cast<std::uint64_t>(i),
                          static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(rec.events_recorded(0), 10u);
  EXPECT_EQ(rec.dropped(0), 6u);
  const std::vector<obs::Event> evs = rec.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest first, and only the newest four survive.
  EXPECT_EQ(evs.front().t0, 6u);
  EXPECT_EQ(evs.back().t0, 9u);
}

TEST(ObsRecorder, EventsMergeSortedAcrossTasks) {
  obs::Recorder rec({.ntasks = 2, .num_scopes = 0, .ring_capacity = 8});
  rec.record(make_event(obs::EventKind::barrier, 1, 5, 9));
  rec.record(make_event(obs::EventKind::barrier, 0, 2, 3));
  rec.record(make_event(obs::EventKind::barrier, 0, 7, 8));
  const std::vector<obs::Event> evs = rec.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].t0, 2u);
  EXPECT_EQ(evs[1].t0, 5u);
  EXPECT_EQ(evs[2].t0, 7u);
}

TEST(ObsRecorder, ZeroCapacityDisablesRingsKeepsCounters) {
  obs::Recorder rec({.ntasks = 1, .num_scopes = 0, .ring_capacity = 0});
  rec.record(make_event(obs::EventKind::barrier, 0, 1, 2));
  rec.count(0, obs::Counter::barrier_entries);
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.counter(0, obs::Counter::barrier_entries), 1u);
}

// ---------- sink chaining ----------

TEST(ObsRecorder, ChainedSinksSeeEveryEvent) {
  obs::Recorder rec({.ntasks = 1, .num_scopes = 0, .ring_capacity = 4});
  CollectingSink sink;
  rec.chain(&sink);
  rec.record(make_event(obs::EventKind::single_exec, 0, 1, 2));
  // Events without a valid task bypass the rings but still reach sinks.
  rec.record(make_event(obs::EventKind::first_touch, -1, 3, 3));
  ASSERT_EQ(sink.seen.size(), 2u);
  EXPECT_EQ(sink.seen[1].task, -1);
  EXPECT_EQ(rec.events().size(), 1u);
}

TEST(ObsRecorder, RecorderChainsOntoRecorder) {
  // A Recorder is itself a Sink: a node-wide recorder can forward into a
  // long-lived aggregate one.
  obs::Recorder downstream({.ntasks = 2, .num_scopes = 0, .ring_capacity = 4});
  obs::Recorder rec({.ntasks = 2, .num_scopes = 0, .ring_capacity = 4});
  rec.chain(&downstream);
  rec.record(make_event(obs::EventKind::barrier, 1, 4, 6));
  ASSERT_EQ(downstream.events().size(), 1u);
  EXPECT_EQ(downstream.events()[0].duration_ns(), 2u);
}

// ---------- exporters ----------

TEST(ObsSnapshot, JsonCarriesCounterAndScopeColumns) {
  obs::Recorder rec({.ntasks = 1, .num_scopes = 2, .ring_capacity = 0});
  rec.count(0, obs::Counter::get_addr_warm, 3);
  rec.count_scope_bytes(0, 1, 128);
  const std::string json =
      obs::to_json(rec.snapshot(), {"node", "numa"});
  EXPECT_NE(json.find("\"get_addr_warm\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bytes_numa\": 128"), std::string::npos) << json;
  EXPECT_NE(json.find("\"touches_numa\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tasks\""), std::string::npos) << json;
}

TEST(ObsChromeTrace, EmitsSlicesInstantsAndMetadata) {
  std::vector<obs::Event> evs;
  obs::Event barrier = make_event(obs::EventKind::barrier, 0, 1000, 3000);
  barrier.sid = 0;
  barrier.instance = 0;
  evs.push_back(barrier);
  obs::Event coll = make_event(obs::EventKind::collective, 1, 2000, 2500);
  coll.arg = static_cast<std::int64_t>(obs::CollOp::allreduce);
  coll.arg2 = 4096;  // bytes
  evs.push_back(coll);
  obs::Event p2p = make_event(obs::EventKind::p2p_send, 0, 2100, 2100);
  p2p.arg = 1;
  p2p.arg2 = (std::int64_t{7} << 32) | 42;
  evs.push_back(p2p);

  obs::TraceNaming naming;
  naming.scope_name = [](int sid) {
    return sid == 0 ? std::string("node") : std::string();
  };
  const std::string json = obs::chrome_trace_json(evs, naming);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("barrier node#0"), std::string::npos) << json;
  EXPECT_NE(json.find("coll allreduce"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bytes\": 4096"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tag\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\": 2.000"), std::string::npos) << json;
  // Per-task thread metadata for both tasks.
  EXPECT_NE(json.find("task 0"), std::string::npos);
  EXPECT_NE(json.find("task 1"), std::string::npos);
}

// ---------- ScopeSet and the consolidated directive surface ----------

TEST(ScopeSet, ResolvesCommonAndWidestOnce) {
  topo::Machine m = topo::Machine::generic(2, 4);
  hls::Runtime rt(m, 2);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto a = hls::add_var<int>(mb, "a", topo::numa_scope());
  auto b = hls::add_var<int>(mb, "b", topo::node_scope());
  mb.commit();

  const hls::ScopeSet same(rt, {a.handle(), a.handle()});
  EXPECT_TRUE(same.single_scoped());
  EXPECT_EQ(same.common().kind, topo::ScopeKind::numa);

  const hls::ScopeSet mixed(rt, {a.handle(), b.handle()});
  EXPECT_FALSE(mixed.single_scoped());
  EXPECT_EQ(mixed.widest().kind, topo::ScopeKind::node);
  EXPECT_THROW(mixed.common(), hls::HlsError);

  EXPECT_THROW(hls::ScopeSet(rt, {}), hls::HlsError);
  EXPECT_THROW(hls::ScopeSet().widest(), hls::HlsError);
}

TEST(ScopeSet, DirectivesDispatchThroughPreresolvedSet) {
  topo::Machine m = topo::Machine::generic(1, 2);
  hls::Runtime rt(m, 2);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  mb.commit();

  int singles = 0;
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
    const hls::ScopeSet set = view.scopes({v.handle()});
    for (int round = 0; round < 3; ++round) {
      view.barrier(set);
      view.single(set, [&] { ++singles; });
    }
  });
  EXPECT_EQ(singles, 3);
}

TEST(DirectiveSurface, SingleNowaitOnBoundTask) {
  topo::Machine m = topo::Machine::generic(1, 1);
  hls::Runtime rt(m, 1);
  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  mb.commit();
  ult::ThreadTaskContext ctx;
  ctx.set_task_id(0);
  ctx.set_cpu(0);
  rt.bind_task(ctx);
  EXPECT_TRUE(rt.single_nowait({v.handle()}, ctx));
}

// ---------- runtime instrumentation ----------

TEST(ObsRuntime, CountsDirectivesAndStorage) {
  topo::Machine m = topo::Machine::generic(1, 2);
  hls::Runtime rt(m, 2);
  obs::Recorder* rec = rt.obs();
  if (rec == nullptr) GTEST_SKIP() << "built with HLSMPC_OBS=OFF";

  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  mb.commit();

  constexpr int kRounds = 3;
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
    for (int round = 0; round < kRounds; ++round) {
      (void)view.get(v);
      view.barrier({v.handle()});
      view.single({v.handle()}, [] {});
      view.single_nowait({v.handle()}, [] {});
    }
  });

  const obs::Snapshot s = rec->snapshot();
  // One cold resolve per task, the rest warm.
  EXPECT_EQ(s.value(obs::Counter::get_addr_cold), 2u);
  EXPECT_EQ(s.value(obs::Counter::get_addr_warm),
            static_cast<std::uint64_t>(2 * kRounds - 2));
  EXPECT_EQ(s.value(obs::Counter::barrier_entries),
            static_cast<std::uint64_t>(2 * kRounds));
  // Every single elects exactly one executor.
  EXPECT_EQ(s.value(obs::Counter::single_wins),
            static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(s.value(obs::Counter::single_losses),
            static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(s.value(obs::Counter::nowait_claims),
            static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(s.value(obs::Counter::nowait_skips),
            static_cast<std::uint64_t>(kRounds));
  // The module region materialized once, on the node instance (sid 0).
  EXPECT_EQ(s.value(obs::Counter::first_touches), 1u);
  ASSERT_FALSE(s.total.scope_bytes.empty());
  EXPECT_GE(s.total.scope_bytes[0], sizeof(int));

  // Episode events carry durations on the recorder's clock axis.
  bool saw_barrier = false;
  bool saw_single_exec = false;
  bool saw_first_touch = false;
  for (const obs::Event& e : rec->events()) {
    if (e.kind == obs::EventKind::barrier) {
      saw_barrier = true;
      EXPECT_GE(e.t1, e.t0);
      EXPECT_EQ(e.sid, 0);
    }
    if (e.kind == obs::EventKind::single_exec) saw_single_exec = true;
    if (e.kind == obs::EventKind::first_touch) {
      saw_first_touch = true;
      EXPECT_GE(e.arg, static_cast<std::int64_t>(sizeof(int)));
    }
  }
  EXPECT_TRUE(saw_barrier);
  EXPECT_TRUE(saw_single_exec);
  EXPECT_TRUE(saw_first_touch);
}

TEST(ObsRuntime, MigrationCountsAcceptAndReject) {
  topo::Machine m = topo::Machine::generic(1, 2);
  hls::Runtime rt(m, 2);
  obs::Recorder* rec = rt.obs();
  if (rec == nullptr) GTEST_SKIP() << "built with HLSMPC_OBS=OFF";

  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::core_scope());
  mb.commit();

  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
    if (view.context().task_id() == 0) {
      // Both tasks have seen zero episodes: the move is legal.
      view.migrate(1);
      // Now unbalance the counters and try again: rejected.
      view.single_nowait({v.handle()}, [] {});
      EXPECT_THROW(view.migrate(0), hls::HlsError);
    }
  });
  const obs::Snapshot s = rec->snapshot();
  EXPECT_EQ(s.value(obs::Counter::migrations_ok), 1u);
  EXPECT_EQ(s.value(obs::Counter::migrations_rejected), 1u);
}

TEST(ObsRuntime, SharedRecorderViaOptionsAndSinkChain) {
  topo::Machine m = topo::Machine::generic(1, 2);
  obs::Recorder shared({.ntasks = 2, .num_scopes = 8, .ring_capacity = 64});
  CollectingSink sink;
  hls::Runtime rt(m, 2,
                  hls::Runtime::Options{.obs = &shared, .obs_sink = &sink});
  if (rt.obs() == nullptr) GTEST_SKIP() << "built with HLSMPC_OBS=OFF";
  EXPECT_EQ(rt.obs(), &shared);

  hls::ModuleBuilder mb(rt.registry(), "mod");
  auto v = hls::add_var<int>(mb, "v", topo::node_scope());
  mb.commit();
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  run_tasks(rt, 2, ex,
            [&](hls::TaskView& view) { view.barrier({v.handle()}); });
  EXPECT_EQ(shared.counter(0, obs::Counter::barrier_entries), 1u);
  EXPECT_FALSE(sink.seen.empty());
}

// ---------- determinism under schedule exploration ----------

TEST(ObsExplorer, EpisodeCountersInvariantAcrossSchedules) {
  // The *totals* of the episode counters are schedule-independent: any
  // interleaving elects one single executor per instance and round, every
  // task enters every barrier, and the first touch happens exactly once.
  // Per-task win/loss splits may differ between schedules; their sums may
  // not. The attempt throws on violation, so the explorer sweeps it
  // across systematic + random schedules.
  constexpr int kTasks = 3;
  constexpr int kRounds = 2;
  auto attempt = [&](ult::Executor& ex) {
    topo::Machine m = topo::Machine::generic(1, 4);
    hls::Runtime rt(m, kTasks);
    obs::Recorder* rec = rt.obs();
    if (rec == nullptr) return;  // OFF build: nothing to check
    hls::ModuleBuilder mb(rt.registry(), "mod");
    auto v = hls::add_var<int>(mb, "v", topo::node_scope());
    mb.commit();
    run_tasks(rt, kTasks, ex, [&](hls::TaskView& view) {
      for (int round = 0; round < kRounds; ++round) {
        (void)view.get(v);
        view.barrier({v.handle()});
        view.single({v.handle()}, [] {});
        view.single_nowait({v.handle()}, [] {});
      }
    });
    const obs::Snapshot s = rec->snapshot();
    auto expect = [](std::uint64_t got, std::uint64_t want,
                     const char* what) {
      if (got != want) {
        throw std::runtime_error(std::string(what) + ": got " +
                                 std::to_string(got) + ", want " +
                                 std::to_string(want));
      }
    };
    expect(s.value(obs::Counter::barrier_entries), kTasks * kRounds,
           "barrier_entries");
    expect(s.value(obs::Counter::single_wins), kRounds, "single_wins");
    expect(s.value(obs::Counter::single_losses), (kTasks - 1) * kRounds,
           "single_losses");
    expect(s.value(obs::Counter::nowait_claims) +
               s.value(obs::Counter::nowait_skips),
           kTasks * kRounds, "nowait claim+skip");
    expect(s.value(obs::Counter::nowait_claims), kRounds, "nowait_claims");
    expect(s.value(obs::Counter::first_touches), 1, "first_touches");
    expect(s.value(obs::Counter::get_addr_cold), kTasks, "get_addr_cold");
  };
  check::ExploreOptions opts;
  opts.schedules = 200;
  check::ScheduleExplorer explorer(opts);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
  EXPECT_EQ(res.schedules_run, 200);
}

TEST(ObsExplorer, SameScheduleSameCounters) {
  // Replaying one fixed schedule must reproduce the per-task counter
  // blocks bit for bit — the property that makes obs snapshots usable as
  // regression columns in BENCH_*.json.
  auto run_once = [](std::vector<std::uint64_t>* out) {
    topo::Machine m = topo::Machine::generic(1, 2);
    hls::Runtime rt(m, 2);
    if (rt.obs() == nullptr) return false;
    hls::ModuleBuilder mb(rt.registry(), "mod");
    auto v = hls::add_var<int>(mb, "v", topo::node_scope());
    mb.commit();
    check::RandomPolicy policy(1234);
    check::DeterministicExecutor ex(policy);
    run_tasks(rt, 2, ex, [&](hls::TaskView& view) {
      for (int round = 0; round < 4; ++round) {
        (void)view.get(v);
        view.barrier({v.handle()});
        view.single_nowait({v.handle()}, [] {});
      }
    });
    const obs::Snapshot s = rt.obs()->snapshot();
    for (const auto& t : s.tasks) {
      out->insert(out->end(), t.c.begin(), t.c.end());
    }
    return true;
  };
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  if (!run_once(&a)) GTEST_SKIP() << "built with HLSMPC_OBS=OFF";
  ASSERT_TRUE(run_once(&b));
  EXPECT_EQ(a, b);
}

// ---------- node-level wiring (MPI + HLS + tracer retrofit) ----------

TEST(ObsNode, SharedRecorderSeesMpiAndHls) {
  topo::Machine m = topo::Machine::generic(1, 2);
  mpc::NodeOptions opts;
  opts.mpi.nranks = 2;
  mpc::Node node(m, opts);
  obs::Recorder* rec = node.obs();
  if (rec == nullptr) GTEST_SKIP() << "built with HLSMPC_OBS=OFF";
  EXPECT_EQ(node.mpi_rt().obs(), rec);

  hls::ArrayVar<double> shared;
  {
    hls::ModuleBuilder mb(node.hls_rt().registry(), "mod");
    shared = hls::add_array<double>(mb, "B", 8, topo::node_scope());
    mb.commit();
  }
  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    (void)view.get(shared);
    view.barrier({shared.handle()});
    world.barrier(ctx);
    (void)world.allreduce_value(ctx, 1.0, mpi::Op::sum);
    // Explicit point-to-point traffic: collectives may be served entirely
    // by the shared-memory engine, without a single mailbox message.
    const int me = world.rank(ctx);
    if (me == 0) {
      world.send_value(ctx, 41, 1, 7);
    } else {
      (void)world.recv_value<int>(ctx, 0, 7);
    }
  });

  const obs::Snapshot s = rec->snapshot();
  EXPECT_EQ(s.value(obs::Counter::barrier_entries), 2u);
  EXPECT_GT(s.value(obs::Counter::coll_ops), 0u);
  EXPECT_GT(s.value(obs::Counter::p2p_sends), 0u);
  EXPECT_EQ(s.value(obs::Counter::p2p_sends),
            s.value(obs::Counter::p2p_recvs));
  // The drained stream renders to a Chrome trace with MPI slices.
  const std::string json = obs::chrome_trace_json(rec->events());
  EXPECT_NE(json.find("\"cat\": \"mpi\""), std::string::npos);
}

TEST(ObsNode, RuntimeTracerRetrofitsAsSink) {
  // hb::RuntimeTracer attached through the obs event stream (NodeOptions
  // obs_sink) decodes p2p events into the same records the TraceHook path
  // produces — the happens-before advisor runs off the obs stream.
  topo::Machine m = topo::Machine::generic(1, 2);
  hb::RuntimeTracer tracer(2);
  mpc::NodeOptions opts;
  opts.mpi.nranks = 2;
  opts.obs_sink = &tracer;
  mpc::Node node(m, opts);
  if (node.obs() == nullptr) GTEST_SKIP() << "built with HLSMPC_OBS=OFF";

  node.run([&](mpi::Comm& world, hls::TaskView& view) {
    auto& ctx = view.context();
    tracer.on_write(ctx.task_id(), "x", ctx.task_id());
    // A real message pair: a barrier alone can be served by the
    // shared-memory collective engine, which emits no p2p events.
    const int me = world.rank(ctx);
    if (me == 0) {
      world.send_value(ctx, 1, 1, 3);
    } else {
      (void)world.recv_value<int>(ctx, 0, 3);
    }
    tracer.on_read(ctx.task_id(), "x", 0);
  });

  const hb::Trace t = tracer.trace();
  bool saw_send = false;
  bool saw_recv = false;
  for (const auto& e : t.events()) {
    if (e.kind == hb::EventKind::send) saw_send = true;
    if (e.kind == hb::EventKind::recv) saw_recv = true;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_recv);
}
