#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"
#include "cachesim/runner.hpp"
#include "topo/topology.hpp"

namespace cs = hlsmpc::cachesim;
namespace topo = hlsmpc::topo;

namespace {

/// Tiny machine for deterministic cache arithmetic: 2 sockets x 2 cores,
/// L1 private 1 KB, L2 shared per socket 8 KB, 64 B lines.
topo::Machine tiny() {
  topo::MachineDesc d;
  d.name = "tiny";
  d.sockets = 2;
  d.cores_per_numa = 2;
  d.caches = {
      {.level = 1, .size_bytes = 1024, .line_bytes = 64, .associativity = 2,
       .cpus_per_instance = 1, .latency_cycles = 1},
      {.level = 2, .size_bytes = 8192, .line_bytes = 64, .associativity = 4,
       .cpus_per_instance = 2, .latency_cycles = 10},
  };
  d.memory_latency_cycles = 100;
  d.memory_lines_per_cycle = 0.5;
  return topo::Machine(d);
}

}  // namespace

TEST(Cache, HitAfterMiss) {
  cs::Cache c(1024, 64, 2);
  EXPECT_FALSE(c.access(5, false).hit);
  EXPECT_TRUE(c.access(5, false).hit);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictionOrder) {
  // 2-way, 8 sets: lines 0, 8, 16 map to set 0.
  cs::Cache c(1024, 64, 2);
  c.access(0, false);
  c.access(8, false);
  c.access(0, false);  // refresh 0: now 8 is LRU
  auto r = c.access(16, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 8u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(16));
  EXPECT_FALSE(c.contains(8));
}

TEST(Cache, DirtyVictimCountsWriteback) {
  cs::Cache c(1024, 64, 2);
  c.access(0, true);  // dirty
  c.access(8, false);
  auto r = c.access(16, false);  // evicts 0 (LRU) which is dirty
  EXPECT_TRUE(r.victim_dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, InvalidateRemovesLine) {
  cs::Cache c(1024, 64, 2);
  c.access(3, false);
  EXPECT_TRUE(c.invalidate(3));
  EXPECT_FALSE(c.contains(3));
  EXPECT_FALSE(c.invalidate(3));  // already gone
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(cs::Cache(1024, 0, 2), std::invalid_argument);
  EXPECT_THROW(cs::Cache(64, 64, 2), std::invalid_argument);  // 1 line, 2 ways
}

TEST(Hierarchy, LatencyOrdering) {
  cs::Hierarchy h(tiny());
  const std::uint64_t base = h.alloc_region(4096);
  const std::uint64_t t_mem = h.access(0, base, false, 0);
  const std::uint64_t t_l1 = h.access(0, base, false, t_mem);
  EXPECT_GT(t_mem, 100u);  // memory latency dominates
  EXPECT_EQ(t_l1, 1u);     // L1 hit
  // Evict from L1 only (fill L1 set): lines mapping to the same set.
  // L1: 1KB/64B/2way = 8 sets; same set stride = 8 lines = 512 bytes.
  h.access(0, base + 512, false, 0);
  h.access(0, base + 1024, false, 0);
  const std::uint64_t t_l2 = h.access(0, base, false, 0);
  EXPECT_EQ(t_l2, 1u + 10u);  // L1 miss, L2 hit
}

TEST(Hierarchy, SharedL2VisibleToSocketPeer) {
  cs::Hierarchy h(tiny());
  const std::uint64_t base = h.alloc_region(4096);
  h.access(0, base, false, 0);                       // cpu0 pulls to L2
  const std::uint64_t t = h.access(1, base, false, 0);  // same socket
  EXPECT_EQ(t, 1u + 10u);  // L1 miss, hits the shared L2
  // Other socket must go to memory.
  const std::uint64_t t2 = h.access(2, base, false, 0);
  EXPECT_GT(t2, 100u);
}

TEST(Hierarchy, WriteInvalidatesOtherSocketsCopies) {
  cs::Hierarchy h(tiny());
  const std::uint64_t base = h.alloc_region(4096);
  h.access(0, base, false, 0);  // socket 0 caches it
  h.access(2, base, false, 0);  // socket 1 caches it
  EXPECT_TRUE(h.cache(2, 0).contains(base >> 6));
  EXPECT_TRUE(h.cache(2, 1).contains(base >> 6));
  h.access(0, base, true, 0);  // write from socket 0
  EXPECT_TRUE(h.cache(2, 0).contains(base >> 6));   // writer's L2 keeps it
  EXPECT_FALSE(h.cache(2, 1).contains(base >> 6));  // peer socket invalidated
  EXPECT_GE(h.stats().coherence_invalidations, 1u);
  // Socket-1 re-read misses to memory again.
  EXPECT_GT(h.access(2, base, false, 0), 100u);
}

TEST(Hierarchy, WriteInvalidatesPeerCoreL1SameSocket) {
  cs::Hierarchy h(tiny());
  const std::uint64_t base = h.alloc_region(4096);
  h.access(1, base, false, 0);  // cpu1's L1 + shared L2
  h.access(0, base, false, 0);  // cpu0's L1
  h.access(0, base, true, 0);   // cpu0 writes
  EXPECT_FALSE(h.cache(1, 1).contains(base >> 6));  // cpu1 L1 invalidated
  EXPECT_TRUE(h.cache(2, 0).contains(base >> 6));   // shared L2 retained
  // cpu1 re-read: cheap L2 hit, not memory.
  EXPECT_EQ(h.access(1, base, false, 0), 11u);
}

TEST(Hierarchy, InclusionBackInvalidatesInnerCaches) {
  cs::Hierarchy h(tiny());
  // L2 is 8KB/64B/4way = 32 sets; same-set stride = 32*64 = 2KB.
  const std::uint64_t base = h.alloc_region(64 * 1024);
  h.access(0, base, false, 0);
  EXPECT_TRUE(h.cache(1, 0).contains(base >> 6));
  // Fill L2 set 0 with 4 more lines mapping to it -> evicts `base`.
  for (int i = 1; i <= 4; ++i) {
    h.access(0, base + static_cast<std::uint64_t>(i) * 2048, false, 0);
  }
  EXPECT_FALSE(h.cache(2, 0).contains(base >> 6));
  EXPECT_FALSE(h.cache(1, 0).contains(base >> 6))
      << "inclusion violated: line evicted from L2 still in L1";
}

TEST(Hierarchy, BandwidthContentionQueues) {
  // Two cores streaming distinct regions on one socket. With one line per
  // 200 cycles of channel capacity and ~111-cycle miss latency, a second
  // streaming core must queue behind the first.
  topo::MachineDesc d = tiny().desc();
  d.memory_lines_per_cycle = 0.005;  // 200 cycles of occupancy per line
  const topo::Machine slow_mem{d};

  cs::Hierarchy h(slow_mem);
  const std::uint64_t r0 = h.alloc_region(1 << 20);
  std::uint64_t t_solo = 0;
  for (int i = 0; i < 64; ++i) {
    t_solo += h.access(0, r0 + static_cast<std::uint64_t>(i) * 64, false, t_solo);
  }
  cs::Hierarchy h2(slow_mem);
  const std::uint64_t a = h2.alloc_region(1 << 20);
  const std::uint64_t b = h2.alloc_region(1 << 20);
  std::uint64_t ta = 0, tb = 0;
  for (int i = 0; i < 64; ++i) {
    ta += h2.access(0, a + static_cast<std::uint64_t>(i) * 64, false, ta);
    tb += h2.access(1, b + static_cast<std::uint64_t>(i) * 64, false, tb);
  }
  // Sharing the channel must be slower per core than running alone.
  EXPECT_GT(ta, t_solo);
  EXPECT_GT(tb, t_solo);
  // Cores on the other socket use their own channel: no cross-socket queue.
  cs::Hierarchy h3(slow_mem);
  const std::uint64_t c = h3.alloc_region(1 << 20);
  const std::uint64_t e = h3.alloc_region(1 << 20);
  std::uint64_t tc = 0, te = 0;
  for (int i = 0; i < 64; ++i) {
    tc += h3.access(0, c + static_cast<std::uint64_t>(i) * 64, false, tc);
    te += h3.access(2, e + static_cast<std::uint64_t>(i) * 64, false, te);
  }
  EXPECT_EQ(tc, t_solo);
  EXPECT_EQ(te, t_solo);
}

TEST(Hierarchy, RegionsDoNotOverlap) {
  cs::Hierarchy h(tiny());
  const std::uint64_t a = h.alloc_region(1000);
  const std::uint64_t b = h.alloc_region(1000);
  EXPECT_GE(b, a + 1000);
}

TEST(Runner, MakespanIsMaxOfCores) {
  cs::Hierarchy h(tiny());
  const std::uint64_t r = h.alloc_region(1 << 16);
  std::vector<cs::Access> short_trace, long_trace;
  for (int i = 0; i < 10; ++i) {
    short_trace.push_back({r + static_cast<std::uint64_t>(i) * 64, false, 0});
  }
  for (int i = 0; i < 100; ++i) {
    long_trace.push_back(
        {r + 4096 + static_cast<std::uint64_t>(i) * 64, false, 0});
  }
  std::vector<std::unique_ptr<cs::CoreStream>> streams;
  streams.push_back(std::make_unique<cs::VectorStream>(short_trace));
  streams.push_back(std::make_unique<cs::VectorStream>(long_trace));
  cs::Runner runner(h, {0, 2}, std::move(streams));
  const cs::RunResult rr = runner.run();
  EXPECT_EQ(rr.total_accesses, 110u);
  EXPECT_EQ(rr.makespan,
            std::max(rr.cycles_per_core[0], rr.cycles_per_core[1]));
  EXPECT_GT(rr.cycles_per_core[1], rr.cycles_per_core[0]);
}

TEST(Runner, ComputeCyclesAdvanceClock) {
  cs::Hierarchy h(tiny());
  const std::uint64_t r = h.alloc_region(4096);
  std::vector<cs::Access> trace = {{r, false, 1000}, {r, false, 1000}};
  std::vector<std::unique_ptr<cs::CoreStream>> streams;
  streams.push_back(std::make_unique<cs::VectorStream>(trace));
  cs::Runner runner(h, {0}, std::move(streams));
  EXPECT_GT(runner.run().makespan, 2000u);
}

TEST(Runner, ValidatesArguments) {
  cs::Hierarchy h(tiny());
  std::vector<std::unique_ptr<cs::CoreStream>> streams;
  streams.push_back(std::make_unique<cs::VectorStream>(std::vector<cs::Access>{}));
  EXPECT_THROW(cs::Runner(h, {0, 1}, std::move(streams)),
               std::invalid_argument);
  std::vector<std::unique_ptr<cs::CoreStream>> streams2;
  streams2.push_back(
      std::make_unique<cs::VectorStream>(std::vector<cs::Access>{}));
  EXPECT_THROW(cs::Runner(h, {99}, std::move(streams2)),
               std::invalid_argument);
}

// Property: hit rate is monotone in cache capacity for an LRU-friendly
// cyclic trace.
class CapacitySweep : public testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CapacitySweep,
                         testing::Values(1024, 2048, 4096, 8192));

TEST_P(CapacitySweep, HitRateGrowsWithCapacity) {
  const std::size_t size = GetParam();
  cs::Cache small(size, 64, 4);
  cs::Cache large(size * 2, 64, 4);
  // Cyclic sweep over 3/2 of the small capacity.
  const std::uint64_t lines = static_cast<std::uint64_t>(size) * 3 / 2 / 64;
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t l = 0; l < lines; ++l) {
      small.access(l * 7, false);  // stride to spread over sets
      large.access(l * 7, false);
    }
  }
  EXPECT_GE(large.stats().hit_rate(), small.stats().hit_rate());
}

TEST(HierarchyShape, DuplicatedTableThrashesSharedCacheSharedCopyFits) {
  // The core HLS capacity effect in miniature: 2 cores random-reading
  // either private table copies (2 x 6 KB > 8 KB L2) or one shared copy
  // (6 KB < 8 KB L2). The shared variant must show a higher L2 hit rate.
  const auto run = [&](bool shared) {
    cs::Hierarchy h(tiny());
    const std::size_t table = 6 * 1024;
    const std::uint64_t t0 = h.alloc_region(table);
    const std::uint64_t t1 = shared ? t0 : h.alloc_region(table);
    std::uint64_t seed = 7;
    auto next = [&seed] {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      return seed >> 33;
    };
    std::vector<cs::Access> a, b;
    for (int i = 0; i < 20000; ++i) {
      a.push_back({t0 + next() % table, false, 0});
      b.push_back({t1 + next() % table, false, 0});
    }
    std::vector<std::unique_ptr<cs::CoreStream>> streams;
    streams.push_back(std::make_unique<cs::VectorStream>(std::move(a)));
    streams.push_back(std::make_unique<cs::VectorStream>(std::move(b)));
    cs::Runner runner(h, {0, 1}, std::move(streams));
    const auto rr = runner.run();
    return rr.makespan;
  };
  const std::uint64_t t_private = run(false);
  const std::uint64_t t_shared = run(true);
  EXPECT_LT(t_shared * 12 / 10, t_private)
      << "sharing the table should be clearly faster";
}
