// Collective-engine test suite.
//
// The centerpiece is a non-commutative reduction sweep: contributions are
// 2x2 integer matrices over Z_1009 combined by matrix multiplication —
// associative but emphatically not commutative — so any engine that folds
// contributions out of ascending rank order (the old scan/exscan operand
// swap, the root-rotated p2p reduce tree) produces a wrong matrix, not a
// wrong-by-epsilon float. Every reduction collective is checked against a
// sequential rank-order reference, across rank counts, payload sizes
// straddling both the shared-memory engine's small_threshold (1KB) and the
// p2p eager threshold (8KB), every root, and both the shared-memory and
// p2p paths.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "check/deterministic_executor.hpp"
#include "check/explorer.hpp"
#include "mpi/coll_algo.hpp"
#include "mpi/coll_shm.hpp"
#include "mpi/runtime.hpp"
#include "topo/topology.hpp"

namespace check = hlsmpc::check;
namespace mpi = hlsmpc::mpi;
namespace obs = hlsmpc::obs;
namespace topo = hlsmpc::topo;
using hlsmpc::ult::TaskContext;

namespace {

// ---- the non-commutative operator ----

constexpr std::int64_t kMod = 1009;

struct Mat {
  std::int32_t a, b, c, d;
  friend bool operator==(const Mat&, const Mat&) = default;
};

Mat mul(const Mat& x, const Mat& y) {
  const auto m = [](std::int64_t v) {
    return static_cast<std::int32_t>(((v % kMod) + kMod) % kMod);
  };
  return Mat{
      m(static_cast<std::int64_t>(x.a) * y.a +
        static_cast<std::int64_t>(x.b) * y.c),
      m(static_cast<std::int64_t>(x.a) * y.b +
        static_cast<std::int64_t>(x.b) * y.d),
      m(static_cast<std::int64_t>(x.c) * y.a +
        static_cast<std::int64_t>(x.d) * y.c),
      m(static_cast<std::int64_t>(x.c) * y.b +
        static_cast<std::int64_t>(x.d) * y.d),
  };
}

mpi::ReduceFn mat_fn() {
  return [](void* inout, const void* in, std::size_t count) {
    Mat* x = static_cast<Mat*>(inout);
    const Mat* y = static_cast<const Mat*>(in);
    for (std::size_t i = 0; i < count; ++i) x[i] = mul(x[i], y[i]);
  };
}

/// Rank r's deterministic contribution for element i.
Mat contrib(int r, std::size_t i) {
  return Mat{static_cast<std::int32_t>(1 + (2 * r + i) % 5),
             static_cast<std::int32_t>((r + 2 * i + 1) % 7),
             static_cast<std::int32_t>((r * r + 3 * i + 2) % 6),
             static_cast<std::int32_t>(1 + (3 * r + 2 * i) % 4)};
}

std::vector<Mat> make_contrib(int r, std::size_t count) {
  std::vector<Mat> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = contrib(r, i);
  return v;
}

/// Rank-order fold of ranks [0, upto]: v_0 * v_1 * ... * v_upto.
std::vector<Mat> reference(int upto, std::size_t count) {
  std::vector<Mat> ref = make_contrib(0, count);
  for (int r = 1; r <= upto; ++r) {
    for (std::size_t i = 0; i < count; ++i) ref[i] = mul(ref[i], contrib(r, i));
  }
  return ref;
}

// Payload sizes (in Mat elements, 16 bytes each) straddling the engine's
// small_threshold (1024 B: 60 -> 960 B flat path, 65 -> 1040 B
// hierarchical path) and the p2p eager threshold (8 KB: 520 -> 8320 B
// rendezvous on the p2p path).
constexpr std::size_t kCounts[] = {1, 60, 65, 520};

struct Param {
  int nranks;
  mpi::ExecutorKind exec;
  bool shm;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  return std::to_string(info.param.nranks) + "ranks_" +
         (info.param.exec == mpi::ExecutorKind::thread ? "thread" : "fiber") +
         (info.param.shm ? "_shm" : "_p2p");
}

mpi::Options opts(const Param& p) {
  mpi::Options o;
  o.nranks = p.nranks;
  o.executor = p.exec;
  o.coll.enable_shm = p.shm;
  return o;
}

class CollParam : public testing::TestWithParam<Param> {
 protected:
  topo::Machine machine_ = topo::Machine::nehalem_ex(2);
  mpi::Runtime rt_{machine_, opts(GetParam())};
};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollParam,
    testing::Values(Param{1, mpi::ExecutorKind::thread, true},
                    Param{2, mpi::ExecutorKind::thread, true},
                    Param{3, mpi::ExecutorKind::thread, true},
                    Param{5, mpi::ExecutorKind::thread, true},
                    Param{8, mpi::ExecutorKind::thread, true},
                    Param{13, mpi::ExecutorKind::thread, true},
                    Param{16, mpi::ExecutorKind::thread, true},
                    Param{2, mpi::ExecutorKind::thread, false},
                    Param{5, mpi::ExecutorKind::thread, false},
                    Param{16, mpi::ExecutorKind::thread, false},
                    Param{4, mpi::ExecutorKind::fiber, true},
                    Param{16, mpi::ExecutorKind::fiber, true},
                    Param{7, mpi::ExecutorKind::fiber, false}),
    param_name);

TEST(CollOp, MatrixMultiplyIsNotCommutative) {
  // The sweep below is only meaningful if operand order is observable.
  const Mat x = contrib(0, 0);
  const Mat y = contrib(1, 0);
  EXPECT_NE(mul(x, y), mul(y, x));
}

TEST(CollAlgo, DisseminationPeersAreExactMirrors) {
  // Pins the precedence fix: the old `(me - step % n + n) % n` spelling
  // must never come back. Every send target's receive source is the
  // sender, at every power-of-two step, for every communicator size.
  for (int n = 1; n <= 64; ++n) {
    for (int step = 1; step < n; step <<= 1) {
      for (int me = 0; me < n; ++me) {
        const int dst = mpi::coll::dissemination_dst(me, step, n);
        const int src = mpi::coll::dissemination_src(me, step, n);
        EXPECT_EQ(mpi::coll::dissemination_src(dst, step, n), me);
        EXPECT_EQ(mpi::coll::dissemination_dst(src, step, n), me);
      }
    }
  }
}

TEST_P(CollParam, NonCommutativeReduceEveryRoot) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      const std::vector<Mat> ref = reference(n - 1, count);
      for (int root = 0; root < n; ++root) {
        const std::vector<Mat> in = make_contrib(me, count);
        std::vector<Mat> out(count, Mat{-1, -1, -1, -1});
        world.reduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn(),
                     root);
        if (me == root && out != ref) ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, NonCommutativeAllreduce) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      const std::vector<Mat> ref = reference(n - 1, count);
      const std::vector<Mat> in = make_contrib(me, count);
      std::vector<Mat> out(count);
      world.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                      mat_fn());
      if (out != ref) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, NonCommutativeScan) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      const std::vector<Mat> ref = reference(me, count);
      const std::vector<Mat> in = make_contrib(me, count);
      std::vector<Mat> out(count);
      world.scan(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
      if (out != ref) ++bad;
    }
    (void)n;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, NonCommutativeExscan) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      const std::vector<Mat> in = make_contrib(me, count);
      const Mat sentinel{-7, -7, -7, -7};
      std::vector<Mat> out(count, sentinel);
      world.exscan(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
      if (me == 0) {
        // MPI_Exscan: rank 0's recvbuf is undefined — ours stays untouched.
        for (const Mat& m : out) {
          if (m != sentinel) ++bad;
        }
      } else {
        if (out != reference(me - 1, count)) ++bad;
      }
    }
    (void)n;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, NonCommutativeReduceScatterBlock) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : {std::size_t{3}, std::size_t{130}}) {
      const std::size_t total = count * static_cast<std::size_t>(n);
      const std::vector<Mat> ref = reference(n - 1, total);
      const std::vector<Mat> in = make_contrib(me, total);
      std::vector<Mat> out(count);
      world.reduce_scatter_block(ctx, in.data(), out.data(), count,
                                 sizeof(Mat), mat_fn());
      for (std::size_t i = 0; i < count; ++i) {
        if (out[i] != ref[static_cast<std::size_t>(me) * count + i]) ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, InPlaceAliasedBuffers) {
  // recvbuf == sendbuf for the ops whose engines stage or sequence around
  // aliasing. The staged scan/exscan snapshot is exactly what makes the
  // shared-memory path safe here.
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      std::vector<Mat> buf = make_contrib(me, count);
      world.allreduce(ctx, buf.data(), buf.data(), count, sizeof(Mat),
                      mat_fn());
      if (buf != reference(n - 1, count)) ++bad;

      buf = make_contrib(me, count);
      world.scan(ctx, buf.data(), buf.data(), count, sizeof(Mat), mat_fn());
      if (buf != reference(me, count)) ++bad;

      buf = make_contrib(me, count);
      world.exscan(ctx, buf.data(), buf.data(), count, sizeof(Mat), mat_fn());
      if (me > 0 && buf != reference(me - 1, count)) ++bad;

      buf = make_contrib(me, count);
      world.reduce(ctx, buf.data(), buf.data(), count, sizeof(Mat), mat_fn(),
                   0);
      if (me == 0 && buf != reference(n - 1, count)) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, BcastEveryRootEverySize) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (const std::size_t bytes : {std::size_t{1}, std::size_t{1000},
                                    std::size_t{1048}, std::size_t{9000}}) {
      for (int root = 0; root < n; ++root) {
        std::vector<std::byte> buf(bytes);
        for (std::size_t i = 0; i < bytes; ++i) {
          buf[i] = (me == root)
                       ? static_cast<std::byte>((i + 7 * root) % 251)
                       : std::byte{0xee};
        }
        world.bcast(ctx, buf.data(), bytes, root);
        for (std::size_t i = 0; i < bytes; ++i) {
          if (buf[i] != static_cast<std::byte>((i + 7 * root) % 251)) ++bad;
        }
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, AllgatherAlltoall) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (const std::size_t words : {std::size_t{1}, std::size_t{400}}) {
      // allgather: everyone contributes a block tagged with its rank.
      std::vector<std::uint32_t> in(words,
                                    static_cast<std::uint32_t>(me + 1));
      std::vector<std::uint32_t> all(words * static_cast<std::size_t>(n));
      world.allgather(ctx, in.data(), words * sizeof(std::uint32_t),
                      all.data());
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < words; ++i) {
          if (all[static_cast<std::size_t>(r) * words + i] !=
              static_cast<std::uint32_t>(r + 1)) {
            ++bad;
          }
        }
      }
      // alltoall: block (me -> r) carries me * 1000 + r.
      std::vector<std::uint32_t> out(words * static_cast<std::size_t>(n));
      std::vector<std::uint32_t> send(words * static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < words; ++i) {
          send[static_cast<std::size_t>(r) * words + i] =
              static_cast<std::uint32_t>(me * 1000 + r);
        }
      }
      world.alltoall(ctx, send.data(), words * sizeof(std::uint32_t),
                     out.data());
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < words; ++i) {
          if (out[static_cast<std::size_t>(r) * words + i] !=
              static_cast<std::uint32_t>(r * 1000 + me)) {
            ++bad;
          }
        }
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, ZeroSizeCollectivesKeepSequenceLockstep) {
  // Zero-byte/zero-count calls are no-ops but still advance the engine's
  // publication sequence on every rank; a real collective after a burst of
  // them must still line up.
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    world.bcast(ctx, nullptr, 0, 0);
    std::vector<Mat> empty;
    world.allreduce(ctx, empty.data(), empty.data(), 0, sizeof(Mat),
                    mat_fn());
    world.scan(ctx, empty.data(), empty.data(), 0, sizeof(Mat), mat_fn());
    const std::vector<Mat> in = make_contrib(me, 8);
    std::vector<Mat> out(8);
    world.allreduce(ctx, in.data(), out.data(), 8, sizeof(Mat), mat_fn());
    if (out != reference(n - 1, 8)) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, BarrierPhases) {
  // Back-to-back barriers stress the hierarchical episode machinery — in
  // particular the wide-to-narrow release order that keeps a fresh arrival
  // off a still-claimed group.
  const int n = GetParam().nranks;
  constexpr int kPhases = 64;
  std::vector<std::atomic<int>> phase(kPhases);
  for (auto& p : phase) p.store(0);
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    for (int k = 0; k < kPhases; ++k) {
      phase[static_cast<std::size_t>(k)].fetch_add(1,
                                                   std::memory_order_relaxed);
      world.barrier(ctx);
      if (phase[static_cast<std::size_t>(k)].load(
              std::memory_order_relaxed) != n) {
        ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, SplitCommunicatorsReduceCorrectly) {
  // split() hands every child communicator its own engine; odd/even colors
  // pin the children onto interleaved cpus, exercising the degenerate
  // (non-contiguous) leader tree.
  const int n = GetParam().nranks;
  if (n < 3) GTEST_SKIP();
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    mpi::Comm& sub = world.split(ctx, me % 2, me);
    const int sub_n = sub.size();
    const int sub_me = sub.rank(ctx);
    for (std::size_t count : {std::size_t{4}, std::size_t{200}}) {
      const std::vector<Mat> in = make_contrib(sub_me, count);
      std::vector<Mat> out(count);
      sub.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
      if (out != reference(sub_n - 1, count)) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

// ---- pipelined large-message path ----
//
// A dedicated sweep drives the shm_pipelined selector arm with a shrunken
// config (1KB small threshold, 4KB pipeline threshold, 2KB fragments =
// 128 Mats per fragment) so modest payloads run real multi-fragment
// pipelines. Counts straddle every fragment boundary: 256 Mats = 4096 B
// sits exactly ON the pipeline threshold (still monolithic zero-copy),
// 257 crosses it, 384/385 and 512/513 straddle the third and fourth
// fragment boundaries, 1000 ends in a short tail fragment. Under the
// coll-pipeline-off preset the same sweep exercises the two-way selector.

namespace {

constexpr std::size_t kPipeCounts[] = {256, 257, 384, 385, 512, 513, 1000};

struct PipeParam {
  int nranks;
  mpi::ExecutorKind exec;
};

std::string pipe_param_name(const testing::TestParamInfo<PipeParam>& info) {
  return std::to_string(info.param.nranks) + "ranks_" +
         (info.param.exec == mpi::ExecutorKind::thread ? "thread" : "fiber");
}

mpi::Options pipe_opts(const PipeParam& p) {
  mpi::Options o;
  o.nranks = p.nranks;
  o.executor = p.exec;
  o.coll.small_threshold = 1024;
  o.coll.pipeline_threshold = 4096;
  o.coll.fragment_bytes = 2048;
  return o;
}

class CollPipelined : public testing::TestWithParam<PipeParam> {
 protected:
  topo::Machine machine_ = topo::Machine::nehalem_ex(2);
  mpi::Runtime rt_{machine_, pipe_opts(GetParam())};
};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollPipelined,
    testing::Values(PipeParam{2, mpi::ExecutorKind::thread},
                    PipeParam{3, mpi::ExecutorKind::thread},
                    PipeParam{5, mpi::ExecutorKind::thread},
                    PipeParam{8, mpi::ExecutorKind::thread},
                    PipeParam{13, mpi::ExecutorKind::thread},
                    PipeParam{16, mpi::ExecutorKind::thread},
                    PipeParam{4, mpi::ExecutorKind::fiber},
                    PipeParam{16, mpi::ExecutorKind::fiber}),
    pipe_param_name);

TEST_P(CollPipelined, NonCommutativeAllreduceAcrossFragmentBoundaries) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kPipeCounts) {
      const std::vector<Mat> ref = reference(n - 1, count);
      const std::vector<Mat> in = make_contrib(me, count);
      std::vector<Mat> out(count);
      world.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                      mat_fn());
      if (out != ref) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollPipelined, NonCommutativeReduceEveryRoot) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : {std::size_t{257}, std::size_t{513}}) {
      const std::vector<Mat> ref = reference(n - 1, count);
      for (int root = 0; root < n; ++root) {
        const std::vector<Mat> in = make_contrib(me, count);
        std::vector<Mat> out(count, Mat{-1, -1, -1, -1});
        world.reduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn(),
                     root);
        if (me == root && out != ref) ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollPipelined, NonCommutativeScanExscan) {
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kPipeCounts) {
      const std::vector<Mat> in = make_contrib(me, count);
      std::vector<Mat> out(count);
      world.scan(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
      if (out != reference(me, count)) ++bad;

      const Mat sentinel{-7, -7, -7, -7};
      std::vector<Mat> ex(count, sentinel);
      world.exscan(ctx, in.data(), ex.data(), count, sizeof(Mat), mat_fn());
      if (me == 0) {
        for (const Mat& m : ex) {
          if (m != sentinel) ++bad;
        }
      } else if (ex != reference(me - 1, count)) {
        ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollPipelined, NonCommutativeReduceScatterBlock) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : {std::size_t{129}, std::size_t{200}}) {
      const std::size_t total = count * static_cast<std::size_t>(n);
      const std::vector<Mat> ref = reference(n - 1, total);
      const std::vector<Mat> in = make_contrib(me, total);
      std::vector<Mat> out(count);
      world.reduce_scatter_block(ctx, in.data(), out.data(), count,
                                 sizeof(Mat), mat_fn());
      for (std::size_t i = 0; i < count; ++i) {
        if (out[i] != ref[static_cast<std::size_t>(me) * count + i]) ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollPipelined, BcastAllgatherAcrossFragmentBoundaries) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (const std::size_t bytes :
         {std::size_t{4097}, std::size_t{6144}, std::size_t{6145},
          std::size_t{16000}}) {
      for (int root : {0, n - 1}) {
        std::vector<std::byte> buf(bytes);
        for (std::size_t i = 0; i < bytes; ++i) {
          buf[i] = (me == root)
                       ? static_cast<std::byte>((i + 7 * root) % 251)
                       : std::byte{0xee};
        }
        world.bcast(ctx, buf.data(), bytes, root);
        for (std::size_t i = 0; i < bytes; ++i) {
          if (buf[i] != static_cast<std::byte>((i + 7 * root) % 251)) ++bad;
        }
      }
      std::vector<std::uint8_t> in(bytes, static_cast<std::uint8_t>(me + 1));
      std::vector<std::uint8_t> all(bytes * static_cast<std::size_t>(n));
      world.allgather(ctx, in.data(), bytes, all.data());
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < bytes; ++i) {
          if (all[static_cast<std::size_t>(r) * bytes + i] !=
              static_cast<std::uint8_t>(r + 1)) {
            ++bad;
          }
        }
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollPipelined, InPlaceAliasedBuffers) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : {std::size_t{257}, std::size_t{513}}) {
      std::vector<Mat> buf = make_contrib(me, count);
      world.allreduce(ctx, buf.data(), buf.data(), count, sizeof(Mat),
                      mat_fn());
      if (buf != reference(n - 1, count)) ++bad;

      buf = make_contrib(me, count);
      world.scan(ctx, buf.data(), buf.data(), count, sizeof(Mat), mat_fn());
      if (buf != reference(me, count)) ++bad;

      buf = make_contrib(me, count);
      world.exscan(ctx, buf.data(), buf.data(), count, sizeof(Mat), mat_fn());
      if (me > 0 && buf != reference(me - 1, count)) ++bad;

      buf = make_contrib(me, count);
      world.reduce(ctx, buf.data(), buf.data(), count, sizeof(Mat), mat_fn(),
                   0);
      if (me == 0 && buf != reference(n - 1, count)) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

// ---- selector boundaries ----
//
// In-place aliasing and zero-count calls at exactly small_threshold,
// small_threshold + 1, pipeline_threshold and pipeline_threshold + 1
// bytes, with a shrunken config (256 B / 1KB, 512 B fragments) so both
// edges sit within quick payloads. Zero-count calls are interleaved
// between the sized ones, so a boundary-size collective right after a
// no-op burst proves the sequence/fragment lockstep holds on every arm.

namespace {

mpi::ReduceFn u8_sum() {
  return [](void* inout, const void* in, std::size_t count) {
    auto* a = static_cast<std::uint8_t*>(inout);
    const auto* b = static_cast<const std::uint8_t*>(in);
    for (std::size_t i = 0; i < count; ++i) {
      a[i] = static_cast<std::uint8_t>(a[i] + b[i]);
    }
  };
}

std::uint8_t u8_contrib(int r, std::size_t i) {
  return static_cast<std::uint8_t>((static_cast<std::size_t>(r) * 31 + i) %
                                   256);
}

mpi::Options boundary_opts(const PipeParam& p) {
  mpi::Options o;
  o.nranks = p.nranks;
  o.executor = p.exec;
  o.coll.small_threshold = 256;
  o.coll.pipeline_threshold = 1024;
  o.coll.fragment_bytes = 512;
  return o;
}

class CollSelectorBoundary : public testing::TestWithParam<PipeParam> {
 protected:
  topo::Machine machine_ = topo::Machine::nehalem_ex(2);
  mpi::Runtime rt_{machine_, boundary_opts(GetParam())};
};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollSelectorBoundary,
    testing::Values(PipeParam{1, mpi::ExecutorKind::thread},
                    PipeParam{2, mpi::ExecutorKind::thread},
                    PipeParam{3, mpi::ExecutorKind::thread},
                    PipeParam{5, mpi::ExecutorKind::thread},
                    PipeParam{8, mpi::ExecutorKind::thread},
                    PipeParam{13, mpi::ExecutorKind::thread},
                    PipeParam{16, mpi::ExecutorKind::thread},
                    PipeParam{1, mpi::ExecutorKind::fiber},
                    PipeParam{4, mpi::ExecutorKind::fiber},
                    PipeParam{16, mpi::ExecutorKind::fiber}),
    pipe_param_name);

TEST_P(CollSelectorBoundary, InPlaceAndZeroCountAtEveryThresholdEdge) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    std::vector<std::uint8_t> empty;
    for (const std::size_t bytes : {std::size_t{256}, std::size_t{257},
                                    std::size_t{1024}, std::size_t{1025}}) {
      // Zero-count no-ops on either side of every sized call.
      world.allreduce(ctx, empty.data(), empty.data(), 0, 1, u8_sum());
      world.bcast(ctx, empty.data(), 0, 0);

      // In-place allreduce at the exact boundary size.
      std::vector<std::uint8_t> buf(bytes);
      for (std::size_t i = 0; i < bytes; ++i) buf[i] = u8_contrib(me, i);
      world.allreduce(ctx, buf.data(), buf.data(), bytes, 1, u8_sum());
      for (std::size_t i = 0; i < bytes; ++i) {
        std::uint8_t want = 0;
        for (int r = 0; r < n; ++r) {
          want = static_cast<std::uint8_t>(want + u8_contrib(r, i));
        }
        if (buf[i] != want) ++bad;
      }

      world.scan(ctx, empty.data(), empty.data(), 0, 1, u8_sum());

      // In-place scan at the same size.
      for (std::size_t i = 0; i < bytes; ++i) buf[i] = u8_contrib(me, i);
      world.scan(ctx, buf.data(), buf.data(), bytes, 1, u8_sum());
      for (std::size_t i = 0; i < bytes; ++i) {
        std::uint8_t want = 0;
        for (int r = 0; r <= me; ++r) {
          want = static_cast<std::uint8_t>(want + u8_contrib(r, i));
        }
        if (buf[i] != want) ++bad;
      }

      // Separate-buffer reduce to the highest rank at the boundary size.
      std::vector<std::uint8_t> in(bytes);
      for (std::size_t i = 0; i < bytes; ++i) in[i] = u8_contrib(me, i);
      std::vector<std::uint8_t> out(bytes, 0xa5);
      world.reduce(ctx, in.data(), out.data(), bytes, 1, u8_sum(), n - 1);
      if (me == n - 1) {
        for (std::size_t i = 0; i < bytes; ++i) {
          std::uint8_t want = 0;
          for (int r = 0; r < n; ++r) {
            want = static_cast<std::uint8_t>(want + u8_contrib(r, i));
          }
          if (out[i] != want) ++bad;
        }
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

#if HLSMPC_COLL_SHM_ENABLED

TEST(CollShmEngine, AttachesAndFollowsTopology) {
  // nehalem_ex(2): 2 sockets x 8 cores, one rank per cpu. The leader tree
  // must pick up the shared-cache level (two groups of 8) below the node
  // root; every level partitions the ranks into ascending contiguous runs.
  topo::Machine m = topo::Machine::nehalem_ex(2);
  mpi::Options o;
  o.nranks = 16;
  mpi::Runtime rt(m, o);
  mpi::ShmCollEngine* eng = rt.world().shm_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_EQ(eng->size(), 16);
  ASSERT_GE(eng->num_levels(), 2);

  const auto leaf = eng->level_groups(0);
  EXPECT_GT(leaf.size(), 1u);
  int expect = 0;
  for (const auto& g : leaf) {
    ASSERT_FALSE(g.empty());
    for (int r : g) EXPECT_EQ(r, expect++);  // ascending, contiguous runs
  }
  EXPECT_EQ(expect, 16);

  const auto top = eng->level_groups(eng->num_levels() - 1);
  EXPECT_EQ(top.size(), 1u);          // single root group
  EXPECT_EQ(top.front().front(), 0);  // led by rank 0
}

TEST(CollShmEngine, ConfigDisablesEngine) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  mpi::Options o;
  o.nranks = 4;
  o.coll.enable_shm = false;
  mpi::Runtime rt(m, o);
  EXPECT_EQ(rt.world().shm_engine(), nullptr);
}

TEST(CollShmEngine, SingleCopyBcastStats) {
  // A B-byte bcast to n ranks through the engine moves exactly (n-1)*B
  // bytes — each non-root copies once, straight out of the root's buffer —
  // and sends zero mailbox messages.
  topo::Machine m = topo::Machine::nehalem_ex(1);
  mpi::Options o;
  o.nranks = 8;
  mpi::Runtime rt(m, o);
  ASSERT_NE(rt.world().shm_engine(), nullptr);
  const std::uint64_t copied0 =
      rt.stats().shm_copied_bytes.load(std::memory_order_relaxed);
  const std::uint64_t msgs0 = rt.stats().messages.load();
  constexpr std::size_t kBytes = 4096;
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    std::vector<std::byte> buf(kBytes, std::byte{1});
    world.bcast(ctx, buf.data(), kBytes, 3);
  });
  EXPECT_EQ(rt.stats().shm_copied_bytes.load(std::memory_order_relaxed) -
                copied0,
            7 * kBytes);
  EXPECT_EQ(rt.stats().messages.load() - msgs0, 0u);
  EXPECT_EQ(rt.stats().shm_collectives.load(std::memory_order_relaxed), 8u);
}

TEST(CollShmEngine, WrappedPinningDegradesToFlatTree) {
  // More ranks than cpus: rank pinning wraps, scope instances repeat in
  // rank order, and every topology level is rejected as non-contiguous —
  // leaving the single-level (flat) catch-all, which must still be exact.
  topo::Machine m = topo::Machine::generic(1, 2);  // 2 cpus
  mpi::Options o;
  o.nranks = 5;
  mpi::Runtime rt(m, o);
  mpi::ShmCollEngine* eng = rt.world().shm_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_EQ(eng->num_levels(), 1);
  std::atomic<int> bad{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const std::vector<Mat> in = make_contrib(me, 32);
    std::vector<Mat> out(32);
    world.allreduce(ctx, in.data(), out.data(), 32, sizeof(Mat), mat_fn());
    if (out != reference(4, 32)) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(CollShmEngine, SelectorArmsAndFragmentGeometry) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  mpi::TransportStats stats;
  mpi::CollConfig cfg;
  cfg.small_threshold = 1024;
  cfg.pipeline_threshold = 4096;
  cfg.fragment_bytes = 2048;
  mpi::ShmCollEngine eng(m, {0, 1}, cfg, &stats);
  EXPECT_EQ(eng.select(0), obs::CollAlg::shm_flat);
  EXPECT_EQ(eng.select(1024), obs::CollAlg::shm_flat);
  EXPECT_EQ(eng.select(1025), obs::CollAlg::shm_hier);
  EXPECT_EQ(eng.select(4096), obs::CollAlg::shm_hier);
#if HLSMPC_COLL_PIPELINE_ENABLED
  EXPECT_EQ(eng.select(4097), obs::CollAlg::shm_pipelined);
  // Geometry is pure in (count, elem_bytes, config): 2048-byte fragments
  // of 16-byte elements hold 128 elements, and a one-past-boundary count
  // gets a short tail fragment.
  const auto g = eng.frag_geom(257, 16);
  EXPECT_EQ(g.frag_elems, 128u);
  EXPECT_EQ(g.nfrags, 3u);
  const auto whole = eng.frag_geom(256, 16);
  EXPECT_EQ(whole.nfrags, 2u);
  // Oversized elements get one element per fragment instead of zero.
  const auto big = eng.frag_geom(3, 64 * 1024);
  EXPECT_EQ(big.frag_elems, 1u);
  EXPECT_EQ(big.nfrags, 3u);
#else
  // Pipeline compiled out: the ctor clamps the threshold to SIZE_MAX.
  EXPECT_EQ(eng.select(4097), obs::CollAlg::shm_hier);
  EXPECT_EQ(eng.select(std::size_t{1} << 30), obs::CollAlg::shm_hier);
#endif
}

#if HLSMPC_COLL_PIPELINE_ENABLED

TEST(CollShmEngine, PipelinedStatsCountCallsAndFragments) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  mpi::Options o;
  o.nranks = 8;
  o.coll.pipeline_threshold = 4096;
  o.coll.fragment_bytes = 2048;
  mpi::Runtime rt(m, o);
  ASSERT_NE(rt.world().shm_engine(), nullptr);
  constexpr std::size_t kCount = 1000;  // 16000 B: pipelined, 8 fragments
  std::atomic<int> bad{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const std::vector<Mat> in = make_contrib(me, kCount);
    std::vector<Mat> out(kCount);
    world.allreduce(ctx, in.data(), out.data(), kCount, sizeof(Mat),
                    mat_fn());
    if (out != reference(7, kCount)) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(
      rt.stats().shm_pipelined_collectives.load(std::memory_order_relaxed),
      8u);
  // Every rank publishes its 8 fragments on one channel or the other
  // (contributions for non-leaders, accumulator fragments for leaders), so
  // the fragment count is exactly ranks x fragments.
  EXPECT_EQ(rt.stats().shm_fragments.load(std::memory_order_relaxed), 64u);
}

TEST(CollShmEngine, RegistrationCacheReusesResolvedBuffers) {
  // scan stages every rank's send buffer through its registration, so the
  // hit/miss counters are exact: one miss per (rank, buffer), hits after.
  topo::Machine m = topo::Machine::generic(1, 4);
  mpi::TransportStats stats;
  mpi::CollConfig cfg;
  cfg.small_threshold = 64;
  cfg.pipeline_threshold = 128;
  cfg.fragment_bytes = 128;
  mpi::ShmCollEngine eng(m, {0, 1}, cfg, &stats);
  constexpr std::size_t kCount = 64;  // 256 B of u32: pipelined, 2 frags
  auto fn = [](void* inout, const void* in, std::size_t count) {
    auto* a = static_cast<std::uint32_t*>(inout);
    const auto* b = static_cast<const std::uint32_t*>(in);
    for (std::size_t i = 0; i < count; ++i) a[i] += b[i];
  };
  std::array<std::vector<std::uint32_t>, 2> in;
  std::array<std::vector<std::uint32_t>, 2> out;
  for (int r = 0; r < 2; ++r) {
    in[static_cast<std::size_t>(r)].assign(kCount,
                                           static_cast<std::uint32_t>(r + 1));
    out[static_cast<std::size_t>(r)].resize(kCount);
  }
  std::vector<int> pins{0, 1};
  {
    check::RoundRobinPolicy policy(1, 0);
    check::DeterministicExecutor ex(policy);
    ex.run(2, pins, [&](TaskContext& ctx) {
      const auto me = static_cast<std::size_t>(ctx.task_id());
      for (int iter = 0; iter < 4; ++iter) {
        eng.scan(ctx, ctx.task_id(), in[me].data(), out[me].data(), kCount,
                 sizeof(std::uint32_t), fn);
      }
    });
  }
  EXPECT_EQ(stats.reg_cache_misses.load(std::memory_order_relaxed), 2u);
  EXPECT_EQ(stats.reg_cache_hits.load(std::memory_order_relaxed), 6u);
  EXPECT_EQ(out[1][0], 3u);  // 1 + 2: the data still reduces correctly

  // Migration invalidates: entries are tagged with the CPU they were
  // resolved on, so a rank that moved re-resolves (miss) and re-caches.
  {
    check::RoundRobinPolicy policy(1, 0);
    check::DeterministicExecutor ex(policy);
    ex.run(2, pins, [&](TaskContext& ctx) {
      const auto me = static_cast<std::size_t>(ctx.task_id());
      ctx.set_cpu(ctx.task_id() + 2);  // simulate a migrate/re-pin
      for (int iter = 0; iter < 2; ++iter) {
        eng.scan(ctx, ctx.task_id(), in[me].data(), out[me].data(), kCount,
                 sizeof(std::uint32_t), fn);
      }
    });
  }
  EXPECT_EQ(stats.reg_cache_misses.load(std::memory_order_relaxed), 4u);
  EXPECT_EQ(stats.reg_cache_hits.load(std::memory_order_relaxed), 8u);

  // The explicit flush hook drops every rank's entries.
  eng.invalidate_registrations();
  {
    check::RoundRobinPolicy policy(1, 0);
    check::DeterministicExecutor ex(policy);
    ex.run(2, pins, [&](TaskContext& ctx) {
      const auto me = static_cast<std::size_t>(ctx.task_id());
      ctx.set_cpu(ctx.task_id() + 2);
      eng.scan(ctx, ctx.task_id(), in[me].data(), out[me].data(), kCount,
               sizeof(std::uint32_t), fn);
    });
  }
  EXPECT_EQ(stats.reg_cache_misses.load(std::memory_order_relaxed), 6u);
}

#endif  // HLSMPC_COLL_PIPELINE_ENABLED

// ---- schedule exploration of fragment publication order ----

TEST(CollPipelineExplore, FragmentedAllreduceHoldsUnderEverySchedule) {
  // Three ranks run a pipelined non-commutative allreduce on the
  // deterministic executor; the explorer sweeps fragment publication
  // orders through the coll:frag-publish sync points (and every yield).
  // Under the coll-pipeline-off preset the same sweep explores the
  // monolithic zero-copy path.
  auto attempt = [](hlsmpc::ult::Executor& ex) {
    topo::Machine m = topo::Machine::generic(1, 4);
    mpi::TransportStats stats;
    mpi::CollConfig cfg;
    cfg.small_threshold = 16;
    cfg.pipeline_threshold = 32;
    cfg.fragment_bytes = 32;  // 2 Mats per fragment
    mpi::ShmCollEngine eng(m, {0, 1, 2}, cfg, &stats);
    constexpr std::size_t kCount = 12;  // 192 B -> 6 fragments
    std::array<std::vector<Mat>, 3> out;
    std::vector<int> pins{0, 1, 2};
    ex.run(3, pins, [&](TaskContext& ctx) {
      const int me = ctx.task_id();
      const std::vector<Mat> in = make_contrib(me, kCount);
      out[static_cast<std::size_t>(me)].assign(kCount, Mat{0, 0, 0, 0});
      eng.allreduce(ctx, me, in.data(),
                    out[static_cast<std::size_t>(me)].data(), kCount,
                    sizeof(Mat), mat_fn());
    });
    const std::vector<Mat> ref = reference(2, kCount);
    for (int r = 0; r < 3; ++r) {
      if (out[static_cast<std::size_t>(r)] != ref) {
        throw std::runtime_error("pipelined allreduce wrong on rank " +
                                 std::to_string(r));
      }
    }
  };
  check::ExploreOptions eo;
  eo.schedules = 250;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
}

TEST(CollPipelineExplore, FragmentedScanHoldsUnderEverySchedule) {
  auto attempt = [](hlsmpc::ult::Executor& ex) {
    topo::Machine m = topo::Machine::generic(1, 4);
    mpi::TransportStats stats;
    mpi::CollConfig cfg;
    cfg.small_threshold = 16;
    cfg.pipeline_threshold = 32;
    cfg.fragment_bytes = 32;
    mpi::ShmCollEngine eng(m, {0, 1, 2}, cfg, &stats);
    constexpr std::size_t kCount = 10;
    std::array<std::vector<Mat>, 3> out;
    std::vector<int> pins{0, 1, 2};
    ex.run(3, pins, [&](TaskContext& ctx) {
      const int me = ctx.task_id();
      // In-place: recvbuf aliases the contribution, leaning on the staged
      // fragment snapshot.
      out[static_cast<std::size_t>(me)] = make_contrib(me, kCount);
      eng.scan(ctx, me, out[static_cast<std::size_t>(me)].data(),
               out[static_cast<std::size_t>(me)].data(), kCount, sizeof(Mat),
               mat_fn());
    });
    for (int r = 0; r < 3; ++r) {
      if (out[static_cast<std::size_t>(r)] != reference(r, kCount)) {
        throw std::runtime_error("pipelined scan wrong on rank " +
                                 std::to_string(r));
      }
    }
  };
  check::ExploreOptions eo;
  eo.schedules = 150;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
}

TEST(CollPipelineExplore, SeededEarlyPublicationIsFoundAndReplays) {
  // The seeded publication bug: a producer that bumps the fragment count
  // BEFORE writing the fragment payload — the store hoisted above
  // production, exactly the ordering publish_frag's release-after-write
  // protocol forbids. The explorer must find a schedule where a consumer
  // acquires the count and reads the unwritten fragment, and the shrunk
  // trace must replay to the same failure.
  auto attempt = [](hlsmpc::ult::Executor& ex) {
    constexpr int kFrags = 4;
    std::array<int, kFrags> data{};
    std::array<int, kFrags> seen{};
    std::atomic<std::uint64_t> published{0};
    std::vector<int> pins{0, 1};
    ex.run(2, pins, [&](TaskContext& ctx) {
      if (ctx.task_id() == 0) {
        for (int f = 0; f < kFrags; ++f) {
          published.store(static_cast<std::uint64_t>(f) + 1,
                          std::memory_order_release);  // BUG: data not ready
          ctx.sync_point("coll:frag-publish");
          data[static_cast<std::size_t>(f)] = 100 + f;
        }
      } else {
        hlsmpc::ult::Backoff backoff(ctx);
        for (int f = 0; f < kFrags; ++f) {
          while (published.load(std::memory_order_acquire) <
                 static_cast<std::uint64_t>(f) + 1) {
            backoff.pause();
          }
          seen[static_cast<std::size_t>(f)] =
              data[static_cast<std::size_t>(f)];
        }
      }
    });
    for (int f = 0; f < kFrags; ++f) {
      if (seen[static_cast<std::size_t>(f)] != 100 + f) {
        throw std::runtime_error("fragment published before payload write");
      }
    }
  };
  check::ExploreOptions eo;
  eo.schedules = 300;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res = explorer.explore(attempt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("fragment published"), std::string::npos)
      << res.error;
  try {
    explorer.replay(attempt, res.failing_trace);
    FAIL() << "shrunk trace did not reproduce the failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fragment published"),
              std::string::npos)
        << e.what();
  }
}

#endif  // HLSMPC_COLL_SHM_ENABLED
