// Collective-engine test suite.
//
// The centerpiece is a non-commutative reduction sweep: contributions are
// 2x2 integer matrices over Z_1009 combined by matrix multiplication —
// associative but emphatically not commutative — so any engine that folds
// contributions out of ascending rank order (the old scan/exscan operand
// swap, the root-rotated p2p reduce tree) produces a wrong matrix, not a
// wrong-by-epsilon float. Every reduction collective is checked against a
// sequential rank-order reference, across rank counts, payload sizes
// straddling both the shared-memory engine's small_threshold (1KB) and the
// p2p eager threshold (8KB), every root, and both the shared-memory and
// p2p paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/coll_algo.hpp"
#include "mpi/coll_shm.hpp"
#include "mpi/runtime.hpp"
#include "topo/topology.hpp"

namespace mpi = hlsmpc::mpi;
namespace topo = hlsmpc::topo;
using hlsmpc::ult::TaskContext;

namespace {

// ---- the non-commutative operator ----

constexpr std::int64_t kMod = 1009;

struct Mat {
  std::int32_t a, b, c, d;
  friend bool operator==(const Mat&, const Mat&) = default;
};

Mat mul(const Mat& x, const Mat& y) {
  const auto m = [](std::int64_t v) {
    return static_cast<std::int32_t>(((v % kMod) + kMod) % kMod);
  };
  return Mat{
      m(static_cast<std::int64_t>(x.a) * y.a +
        static_cast<std::int64_t>(x.b) * y.c),
      m(static_cast<std::int64_t>(x.a) * y.b +
        static_cast<std::int64_t>(x.b) * y.d),
      m(static_cast<std::int64_t>(x.c) * y.a +
        static_cast<std::int64_t>(x.d) * y.c),
      m(static_cast<std::int64_t>(x.c) * y.b +
        static_cast<std::int64_t>(x.d) * y.d),
  };
}

mpi::ReduceFn mat_fn() {
  return [](void* inout, const void* in, std::size_t count) {
    Mat* x = static_cast<Mat*>(inout);
    const Mat* y = static_cast<const Mat*>(in);
    for (std::size_t i = 0; i < count; ++i) x[i] = mul(x[i], y[i]);
  };
}

/// Rank r's deterministic contribution for element i.
Mat contrib(int r, std::size_t i) {
  return Mat{static_cast<std::int32_t>(1 + (2 * r + i) % 5),
             static_cast<std::int32_t>((r + 2 * i + 1) % 7),
             static_cast<std::int32_t>((r * r + 3 * i + 2) % 6),
             static_cast<std::int32_t>(1 + (3 * r + 2 * i) % 4)};
}

std::vector<Mat> make_contrib(int r, std::size_t count) {
  std::vector<Mat> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = contrib(r, i);
  return v;
}

/// Rank-order fold of ranks [0, upto]: v_0 * v_1 * ... * v_upto.
std::vector<Mat> reference(int upto, std::size_t count) {
  std::vector<Mat> ref = make_contrib(0, count);
  for (int r = 1; r <= upto; ++r) {
    for (std::size_t i = 0; i < count; ++i) ref[i] = mul(ref[i], contrib(r, i));
  }
  return ref;
}

// Payload sizes (in Mat elements, 16 bytes each) straddling the engine's
// small_threshold (1024 B: 60 -> 960 B flat path, 65 -> 1040 B
// hierarchical path) and the p2p eager threshold (8 KB: 520 -> 8320 B
// rendezvous on the p2p path).
constexpr std::size_t kCounts[] = {1, 60, 65, 520};

struct Param {
  int nranks;
  mpi::ExecutorKind exec;
  bool shm;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  return std::to_string(info.param.nranks) + "ranks_" +
         (info.param.exec == mpi::ExecutorKind::thread ? "thread" : "fiber") +
         (info.param.shm ? "_shm" : "_p2p");
}

mpi::Options opts(const Param& p) {
  mpi::Options o;
  o.nranks = p.nranks;
  o.executor = p.exec;
  o.coll.enable_shm = p.shm;
  return o;
}

class CollParam : public testing::TestWithParam<Param> {
 protected:
  topo::Machine machine_ = topo::Machine::nehalem_ex(2);
  mpi::Runtime rt_{machine_, opts(GetParam())};
};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollParam,
    testing::Values(Param{1, mpi::ExecutorKind::thread, true},
                    Param{2, mpi::ExecutorKind::thread, true},
                    Param{3, mpi::ExecutorKind::thread, true},
                    Param{5, mpi::ExecutorKind::thread, true},
                    Param{8, mpi::ExecutorKind::thread, true},
                    Param{13, mpi::ExecutorKind::thread, true},
                    Param{16, mpi::ExecutorKind::thread, true},
                    Param{2, mpi::ExecutorKind::thread, false},
                    Param{5, mpi::ExecutorKind::thread, false},
                    Param{16, mpi::ExecutorKind::thread, false},
                    Param{4, mpi::ExecutorKind::fiber, true},
                    Param{16, mpi::ExecutorKind::fiber, true},
                    Param{7, mpi::ExecutorKind::fiber, false}),
    param_name);

TEST(CollOp, MatrixMultiplyIsNotCommutative) {
  // The sweep below is only meaningful if operand order is observable.
  const Mat x = contrib(0, 0);
  const Mat y = contrib(1, 0);
  EXPECT_NE(mul(x, y), mul(y, x));
}

TEST(CollAlgo, DisseminationPeersAreExactMirrors) {
  // Pins the precedence fix: the old `(me - step % n + n) % n` spelling
  // must never come back. Every send target's receive source is the
  // sender, at every power-of-two step, for every communicator size.
  for (int n = 1; n <= 64; ++n) {
    for (int step = 1; step < n; step <<= 1) {
      for (int me = 0; me < n; ++me) {
        const int dst = mpi::coll::dissemination_dst(me, step, n);
        const int src = mpi::coll::dissemination_src(me, step, n);
        EXPECT_EQ(mpi::coll::dissemination_src(dst, step, n), me);
        EXPECT_EQ(mpi::coll::dissemination_dst(src, step, n), me);
      }
    }
  }
}

TEST_P(CollParam, NonCommutativeReduceEveryRoot) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      const std::vector<Mat> ref = reference(n - 1, count);
      for (int root = 0; root < n; ++root) {
        const std::vector<Mat> in = make_contrib(me, count);
        std::vector<Mat> out(count, Mat{-1, -1, -1, -1});
        world.reduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn(),
                     root);
        if (me == root && out != ref) ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, NonCommutativeAllreduce) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      const std::vector<Mat> ref = reference(n - 1, count);
      const std::vector<Mat> in = make_contrib(me, count);
      std::vector<Mat> out(count);
      world.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat),
                      mat_fn());
      if (out != ref) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, NonCommutativeScan) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      const std::vector<Mat> ref = reference(me, count);
      const std::vector<Mat> in = make_contrib(me, count);
      std::vector<Mat> out(count);
      world.scan(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
      if (out != ref) ++bad;
    }
    (void)n;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, NonCommutativeExscan) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      const std::vector<Mat> in = make_contrib(me, count);
      const Mat sentinel{-7, -7, -7, -7};
      std::vector<Mat> out(count, sentinel);
      world.exscan(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
      if (me == 0) {
        // MPI_Exscan: rank 0's recvbuf is undefined — ours stays untouched.
        for (const Mat& m : out) {
          if (m != sentinel) ++bad;
        }
      } else {
        if (out != reference(me - 1, count)) ++bad;
      }
    }
    (void)n;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, NonCommutativeReduceScatterBlock) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : {std::size_t{3}, std::size_t{130}}) {
      const std::size_t total = count * static_cast<std::size_t>(n);
      const std::vector<Mat> ref = reference(n - 1, total);
      const std::vector<Mat> in = make_contrib(me, total);
      std::vector<Mat> out(count);
      world.reduce_scatter_block(ctx, in.data(), out.data(), count,
                                 sizeof(Mat), mat_fn());
      for (std::size_t i = 0; i < count; ++i) {
        if (out[i] != ref[static_cast<std::size_t>(me) * count + i]) ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, InPlaceAliasedBuffers) {
  // recvbuf == sendbuf for the ops whose engines stage or sequence around
  // aliasing. The staged scan/exscan snapshot is exactly what makes the
  // shared-memory path safe here.
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (std::size_t count : kCounts) {
      std::vector<Mat> buf = make_contrib(me, count);
      world.allreduce(ctx, buf.data(), buf.data(), count, sizeof(Mat),
                      mat_fn());
      if (buf != reference(n - 1, count)) ++bad;

      buf = make_contrib(me, count);
      world.scan(ctx, buf.data(), buf.data(), count, sizeof(Mat), mat_fn());
      if (buf != reference(me, count)) ++bad;

      buf = make_contrib(me, count);
      world.exscan(ctx, buf.data(), buf.data(), count, sizeof(Mat), mat_fn());
      if (me > 0 && buf != reference(me - 1, count)) ++bad;

      buf = make_contrib(me, count);
      world.reduce(ctx, buf.data(), buf.data(), count, sizeof(Mat), mat_fn(),
                   0);
      if (me == 0 && buf != reference(n - 1, count)) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, BcastEveryRootEverySize) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (const std::size_t bytes : {std::size_t{1}, std::size_t{1000},
                                    std::size_t{1048}, std::size_t{9000}}) {
      for (int root = 0; root < n; ++root) {
        std::vector<std::byte> buf(bytes);
        for (std::size_t i = 0; i < bytes; ++i) {
          buf[i] = (me == root)
                       ? static_cast<std::byte>((i + 7 * root) % 251)
                       : std::byte{0xee};
        }
        world.bcast(ctx, buf.data(), bytes, root);
        for (std::size_t i = 0; i < bytes; ++i) {
          if (buf[i] != static_cast<std::byte>((i + 7 * root) % 251)) ++bad;
        }
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, AllgatherAlltoall) {
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    for (const std::size_t words : {std::size_t{1}, std::size_t{400}}) {
      // allgather: everyone contributes a block tagged with its rank.
      std::vector<std::uint32_t> in(words,
                                    static_cast<std::uint32_t>(me + 1));
      std::vector<std::uint32_t> all(words * static_cast<std::size_t>(n));
      world.allgather(ctx, in.data(), words * sizeof(std::uint32_t),
                      all.data());
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < words; ++i) {
          if (all[static_cast<std::size_t>(r) * words + i] !=
              static_cast<std::uint32_t>(r + 1)) {
            ++bad;
          }
        }
      }
      // alltoall: block (me -> r) carries me * 1000 + r.
      std::vector<std::uint32_t> out(words * static_cast<std::size_t>(n));
      std::vector<std::uint32_t> send(words * static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < words; ++i) {
          send[static_cast<std::size_t>(r) * words + i] =
              static_cast<std::uint32_t>(me * 1000 + r);
        }
      }
      world.alltoall(ctx, send.data(), words * sizeof(std::uint32_t),
                     out.data());
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < words; ++i) {
          if (out[static_cast<std::size_t>(r) * words + i] !=
              static_cast<std::uint32_t>(r * 1000 + me)) {
            ++bad;
          }
        }
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, ZeroSizeCollectivesKeepSequenceLockstep) {
  // Zero-byte/zero-count calls are no-ops but still advance the engine's
  // publication sequence on every rank; a real collective after a burst of
  // them must still line up.
  const int n = GetParam().nranks;
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    world.bcast(ctx, nullptr, 0, 0);
    std::vector<Mat> empty;
    world.allreduce(ctx, empty.data(), empty.data(), 0, sizeof(Mat),
                    mat_fn());
    world.scan(ctx, empty.data(), empty.data(), 0, sizeof(Mat), mat_fn());
    const std::vector<Mat> in = make_contrib(me, 8);
    std::vector<Mat> out(8);
    world.allreduce(ctx, in.data(), out.data(), 8, sizeof(Mat), mat_fn());
    if (out != reference(n - 1, 8)) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, BarrierPhases) {
  // Back-to-back barriers stress the hierarchical episode machinery — in
  // particular the wide-to-narrow release order that keeps a fresh arrival
  // off a still-claimed group.
  const int n = GetParam().nranks;
  constexpr int kPhases = 64;
  std::vector<std::atomic<int>> phase(kPhases);
  for (auto& p : phase) p.store(0);
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    for (int k = 0; k < kPhases; ++k) {
      phase[static_cast<std::size_t>(k)].fetch_add(1,
                                                   std::memory_order_relaxed);
      world.barrier(ctx);
      if (phase[static_cast<std::size_t>(k)].load(
              std::memory_order_relaxed) != n) {
        ++bad;
      }
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(CollParam, SplitCommunicatorsReduceCorrectly) {
  // split() hands every child communicator its own engine; odd/even colors
  // pin the children onto interleaved cpus, exercising the degenerate
  // (non-contiguous) leader tree.
  const int n = GetParam().nranks;
  if (n < 3) GTEST_SKIP();
  std::atomic<int> bad{0};
  rt_.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    mpi::Comm& sub = world.split(ctx, me % 2, me);
    const int sub_n = sub.size();
    const int sub_me = sub.rank(ctx);
    for (std::size_t count : {std::size_t{4}, std::size_t{200}}) {
      const std::vector<Mat> in = make_contrib(sub_me, count);
      std::vector<Mat> out(count);
      sub.allreduce(ctx, in.data(), out.data(), count, sizeof(Mat), mat_fn());
      if (out != reference(sub_n - 1, count)) ++bad;
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

#if HLSMPC_COLL_SHM_ENABLED

TEST(CollShmEngine, AttachesAndFollowsTopology) {
  // nehalem_ex(2): 2 sockets x 8 cores, one rank per cpu. The leader tree
  // must pick up the shared-cache level (two groups of 8) below the node
  // root; every level partitions the ranks into ascending contiguous runs.
  topo::Machine m = topo::Machine::nehalem_ex(2);
  mpi::Options o;
  o.nranks = 16;
  mpi::Runtime rt(m, o);
  mpi::ShmCollEngine* eng = rt.world().shm_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_EQ(eng->size(), 16);
  ASSERT_GE(eng->num_levels(), 2);

  const auto leaf = eng->level_groups(0);
  EXPECT_GT(leaf.size(), 1u);
  int expect = 0;
  for (const auto& g : leaf) {
    ASSERT_FALSE(g.empty());
    for (int r : g) EXPECT_EQ(r, expect++);  // ascending, contiguous runs
  }
  EXPECT_EQ(expect, 16);

  const auto top = eng->level_groups(eng->num_levels() - 1);
  EXPECT_EQ(top.size(), 1u);          // single root group
  EXPECT_EQ(top.front().front(), 0);  // led by rank 0
}

TEST(CollShmEngine, ConfigDisablesEngine) {
  topo::Machine m = topo::Machine::nehalem_ex(1);
  mpi::Options o;
  o.nranks = 4;
  o.coll.enable_shm = false;
  mpi::Runtime rt(m, o);
  EXPECT_EQ(rt.world().shm_engine(), nullptr);
}

TEST(CollShmEngine, SingleCopyBcastStats) {
  // A B-byte bcast to n ranks through the engine moves exactly (n-1)*B
  // bytes — each non-root copies once, straight out of the root's buffer —
  // and sends zero mailbox messages.
  topo::Machine m = topo::Machine::nehalem_ex(1);
  mpi::Options o;
  o.nranks = 8;
  mpi::Runtime rt(m, o);
  ASSERT_NE(rt.world().shm_engine(), nullptr);
  const std::uint64_t copied0 =
      rt.stats().shm_copied_bytes.load(std::memory_order_relaxed);
  const std::uint64_t msgs0 = rt.stats().messages.load();
  constexpr std::size_t kBytes = 4096;
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    std::vector<std::byte> buf(kBytes, std::byte{1});
    world.bcast(ctx, buf.data(), kBytes, 3);
  });
  EXPECT_EQ(rt.stats().shm_copied_bytes.load(std::memory_order_relaxed) -
                copied0,
            7 * kBytes);
  EXPECT_EQ(rt.stats().messages.load() - msgs0, 0u);
  EXPECT_EQ(rt.stats().shm_collectives.load(std::memory_order_relaxed), 8u);
}

TEST(CollShmEngine, WrappedPinningDegradesToFlatTree) {
  // More ranks than cpus: rank pinning wraps, scope instances repeat in
  // rank order, and every topology level is rejected as non-contiguous —
  // leaving the single-level (flat) catch-all, which must still be exact.
  topo::Machine m = topo::Machine::generic(1, 2);  // 2 cpus
  mpi::Options o;
  o.nranks = 5;
  mpi::Runtime rt(m, o);
  mpi::ShmCollEngine* eng = rt.world().shm_engine();
  ASSERT_NE(eng, nullptr);
  EXPECT_EQ(eng->num_levels(), 1);
  std::atomic<int> bad{0};
  rt.run([&](mpi::Comm& world, TaskContext& ctx) {
    const int me = world.rank(ctx);
    const std::vector<Mat> in = make_contrib(me, 32);
    std::vector<Mat> out(32);
    world.allreduce(ctx, in.data(), out.data(), 32, sizeof(Mat), mat_fn());
    if (out != reference(4, 32)) ++bad;
  });
  EXPECT_EQ(bad.load(), 0);
}

#endif  // HLSMPC_COLL_SHM_ENABLED
