// One-sided RMA test suite (mpi/rma.hpp).
//
// Three layers:
//  - direct engine tests on a standalone Win: bounds checking, memmove
//    semantics for overlapping self-puts, in-place accumulate, lock
//    protocol errors, fence epoch bookkeeping, and the watchdog naming
//    missing fence ranks / the current lock holder;
//  - a runtime sweep through Comm::win_create across rank counts 1..16,
//    thread and fiber executors, payload sizes straddling 1 KB, and every
//    target rank — including the non-commutative accumulate sweep reusing
//    test_coll's 2x2-matrices-over-Z_1009 operator, which turns any
//    out-of-rank-order fold into a hard value mismatch;
//  - schedule exploration: the fence publication guarantee and lock
//    mutual exclusion hold under every explored interleaving, seeded
//    epoch-free variants are found and replay from the shrunk trace, and
//    HlsChecker's verify() pass flags the access pair no epoch orders.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/deterministic_executor.hpp"
#include "check/explorer.hpp"
#include "check/hls_checker.hpp"
#include "mpi/rma.hpp"
#include "mpi/runtime.hpp"
#include "obs/recorder.hpp"
#include "topo/topology.hpp"
#include "ult/scheduler.hpp"
#include "ult/task_context.hpp"

namespace check = hlsmpc::check;
namespace hls = hlsmpc::hls;
namespace mpi = hlsmpc::mpi;
namespace obs = hlsmpc::obs;
namespace rma = hlsmpc::mpi::rma;
namespace topo = hlsmpc::topo;
namespace ult = hlsmpc::ult;

namespace {

// ---- the non-commutative operator (same as test_coll.cpp) ----

constexpr std::int64_t kMod = 1009;

struct Mat {
  std::int32_t a, b, c, d;
  friend bool operator==(const Mat&, const Mat&) = default;
};

constexpr Mat kIdentity{1, 0, 0, 1};

Mat mul(const Mat& x, const Mat& y) {
  const auto m = [](std::int64_t v) {
    return static_cast<std::int32_t>(((v % kMod) + kMod) % kMod);
  };
  return Mat{
      m(static_cast<std::int64_t>(x.a) * y.a +
        static_cast<std::int64_t>(x.b) * y.c),
      m(static_cast<std::int64_t>(x.a) * y.b +
        static_cast<std::int64_t>(x.b) * y.d),
      m(static_cast<std::int64_t>(x.c) * y.a +
        static_cast<std::int64_t>(x.d) * y.c),
      m(static_cast<std::int64_t>(x.c) * y.b +
        static_cast<std::int64_t>(x.d) * y.d),
  };
}

mpi::ReduceFn mat_fn() {
  return [](void* inout, const void* in, std::size_t count) {
    Mat* x = static_cast<Mat*>(inout);
    const Mat* y = static_cast<const Mat*>(in);
    for (std::size_t i = 0; i < count; ++i) x[i] = mul(x[i], y[i]);
  };
}

Mat contrib(int r, std::size_t i) {
  return Mat{static_cast<std::int32_t>(1 + (2 * r + i) % 5),
             static_cast<std::int32_t>((r + 2 * i + 1) % 7),
             static_cast<std::int32_t>((r * r + 3 * i + 2) % 6),
             static_cast<std::int32_t>(1 + (3 * r + 2 * i) % 4)};
}

std::vector<Mat> make_contrib(int r, std::size_t count) {
  std::vector<Mat> v(count);
  for (std::size_t i = 0; i < count; ++i) v[i] = contrib(r, i);
  return v;
}

/// Rank-order fold: v_0 * v_1 * ... * v_upto.
std::vector<Mat> reference(int upto, std::size_t count) {
  std::vector<Mat> ref = make_contrib(0, count);
  for (int r = 1; r <= upto; ++r) {
    for (std::size_t i = 0; i < count; ++i) ref[i] = mul(ref[i], contrib(r, i));
  }
  return ref;
}

// Payload sizes in Mat elements (16 bytes each) straddling 1 KB:
// 16 B, 960 B, 1040 B, 8320 B.
constexpr std::size_t kCounts[] = {1, 60, 65, 520};

/// Deterministic byte pattern for a (source, target, index) triple.
std::uint8_t pattern(int src, int target, std::size_t i) {
  return static_cast<std::uint8_t>(37 * src + 11 * target + i);
}

struct Param {
  int nranks;
  mpi::ExecutorKind exec;
};

std::string param_name(const testing::TestParamInfo<Param>& info) {
  return std::to_string(info.param.nranks) + "ranks_" +
         (info.param.exec == mpi::ExecutorKind::thread ? "thread" : "fiber");
}

mpi::Options opts(const Param& p) {
  mpi::Options o;
  o.nranks = p.nranks;
  o.executor = p.exec;
  return o;
}

class RmaParam : public testing::TestWithParam<Param> {
 protected:
  topo::Machine machine_ = topo::Machine::nehalem_ex(2);
  mpi::Runtime rt_{machine_, opts(GetParam())};
};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, RmaParam,
    testing::Values(Param{1, mpi::ExecutorKind::thread},
                    Param{2, mpi::ExecutorKind::thread},
                    Param{3, mpi::ExecutorKind::thread},
                    Param{5, mpi::ExecutorKind::thread},
                    Param{8, mpi::ExecutorKind::thread},
                    Param{13, mpi::ExecutorKind::thread},
                    Param{16, mpi::ExecutorKind::thread},
                    Param{4, mpi::ExecutorKind::fiber},
                    Param{16, mpi::ExecutorKind::fiber}),
    param_name);

// ---------- direct engine tests ----------

TEST(RmaWin, RejectsBadRanksAndRanges) {
  std::vector<std::uint8_t> r0(64), r1(32);
  rma::Win win({{r0.data(), r0.size()}, {r1.data(), r1.size()}});
  ult::ThreadTaskContext ctx;
  std::uint8_t buf[64] = {};

  EXPECT_EQ(win.size(), 2);
  EXPECT_EQ(win.bytes(0), 64u);
  EXPECT_EQ(win.bytes(1), 32u);
  EXPECT_THROW(win.put(ctx, 0, buf, 8, 2, 0), mpi::MpiError);
  EXPECT_THROW(win.put(ctx, 2, buf, 8, 0, 0), mpi::MpiError);
  EXPECT_THROW(win.put(ctx, 0, buf, 33, 1, 0), mpi::MpiError);
  EXPECT_THROW(win.put(ctx, 0, buf, 8, 1, 25), mpi::MpiError);
  EXPECT_THROW(win.get(ctx, 0, buf, 64, 1, 0), mpi::MpiError);
  EXPECT_THROW(win.accumulate(ctx, 0, buf, 3, 16, mat_fn(), 1, 0),
               mpi::MpiError);
  EXPECT_THROW(win.accumulate(ctx, 0, buf, 1, 16, mpi::ReduceFn{}, 0, 0),
               mpi::MpiError);
  EXPECT_THROW(rma::Win({}), mpi::MpiError);
  // Boundary-exact accesses are legal.
  win.put(ctx, 0, buf, 32, 1, 0);
  win.get(ctx, 0, buf, 64, 0, 0);
}

TEST(RmaWin, OverlappingSelfPutBehavesLikeMemmove) {
  std::vector<std::uint8_t> region(32);
  std::vector<std::uint8_t> expect(32);
  for (std::size_t i = 0; i < region.size(); ++i) {
    region[i] = static_cast<std::uint8_t>(i + 1);
    expect[i] = static_cast<std::uint8_t>(i + 1);
  }
  rma::Win win({{region.data(), region.size()}});
  ult::ThreadTaskContext ctx;
  // Shift 24 bytes forward by 4 inside the rank's own exposed region:
  // source and destination overlap, so a memcpy-based put would corrupt.
  std::memmove(expect.data() + 4, expect.data(), 24);
  win.put(ctx, 0, region.data(), 24, 0, 4);
  EXPECT_EQ(region, expect);
}

TEST(RmaWin, InPlaceAccumulateSquaresElements) {
  std::vector<Mat> region = make_contrib(3, 8);
  std::vector<Mat> expect(8);
  for (std::size_t i = 0; i < 8; ++i) {
    expect[i] = mul(region[i], region[i]);
  }
  rma::Win win({{region.data(), region.size() * sizeof(Mat)}});
  ult::ThreadTaskContext ctx;
  // src aliases the target range exactly; the elementwise fold reads each
  // element once as the right operand while updating it as the left.
  win.accumulate(ctx, 0, region.data(), 8, sizeof(Mat), mat_fn(), 0, 0);
  EXPECT_EQ(region, expect);
}

TEST(RmaWin, LockProtocolErrorsThrow) {
  int r0 = 0;
  rma::Win win({{&r0, sizeof r0}});
  ult::ThreadTaskContext ctx;
  EXPECT_THROW(win.unlock(ctx, 0, 0), mpi::MpiError);  // not held
  win.lock(ctx, 0, rma::LockKind::shared, 0);
  EXPECT_THROW(win.lock(ctx, 0, rma::LockKind::shared, 0), mpi::MpiError);
  win.unlock(ctx, 0, 0);
  win.lock(ctx, 0, rma::LockKind::exclusive, 0);
  win.unlock(ctx, 0, 0);
}

TEST(RmaWin, FenceEpochsAdvance) {
  int r0 = 0;
  rma::Win win({{&r0, sizeof r0}});
  ult::ThreadTaskContext ctx;
  EXPECT_EQ(win.fence_epochs(0), 0u);
  for (int i = 1; i <= 3; ++i) {
    win.fence(ctx, 0);  // single-rank window: completes immediately
    EXPECT_EQ(win.fence_epochs(0), static_cast<std::uint64_t>(i));
  }
}

TEST(RmaWin, StuckFenceNamesMissingRanks) {
  int r0 = 0, r1 = 0;
  rma::WinOptions o;
  o.watchdog_ms = 50;
  o.name = "stuckfence";
  rma::Win win({{&r0, sizeof r0}, {&r1, sizeof r1}}, o);
  ult::ThreadTaskContext ctx;
  try {
    win.fence(ctx, 0);  // rank 1 never arrives
    FAIL() << "expected MpiError from the fence watchdog";
  } catch (const mpi::MpiError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("stuckfence"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("epoch 0"), std::string::npos) << msg;
  }
}

TEST(RmaWin, StuckLockNamesHolder) {
  int r0 = 0, r1 = 0;
  rma::WinOptions o;
  o.watchdog_ms = 50;
  rma::Win win({{&r0, sizeof r0}, {&r1, sizeof r1}}, o);
  ult::ThreadTaskContext ctx;
  win.lock(ctx, 0, rma::LockKind::exclusive, 0);
  try {
    win.lock(ctx, 1, rma::LockKind::exclusive, 0);
    FAIL() << "expected MpiError from the lock watchdog";
  } catch (const mpi::MpiError& e) {
    EXPECT_NE(std::string(e.what()).find("held exclusively by rank 0"),
              std::string::npos)
        << e.what();
  }
  // Shared acquisition against a writer reports the same holder.
  try {
    win.lock(ctx, 1, rma::LockKind::shared, 0);
    FAIL() << "expected MpiError from the lock watchdog";
  } catch (const mpi::MpiError& e) {
    EXPECT_NE(std::string(e.what()).find("held exclusively by rank 0"),
              std::string::npos)
        << e.what();
  }
  win.unlock(ctx, 0, 0);
}

// ---------- runtime sweep through Comm::win_create ----------

TEST_P(RmaParam, PutReachesEveryTargetEverySize) {
  const int n = GetParam().nranks;
  for (const std::size_t count : kCounts) {
    const std::size_t chunk = count * sizeof(Mat);
    std::vector<std::vector<std::uint8_t>> regions(
        static_cast<std::size_t>(n));
    for (auto& r : regions) r.assign(chunk * static_cast<std::size_t>(n), 0);
    rt_.run([&](mpi::Comm& world, ult::TaskContext& ctx) {
      const int me = world.rank(ctx);
      auto& mine = regions[static_cast<std::size_t>(me)];
      rma::Win& win = world.win_create(ctx, mine.data(), mine.size());
      win.fence(ctx, me);
      // Every (source, target) pair: rank me writes its slice of every
      // rank's region, at the offset its rank number owns.
      std::vector<std::uint8_t> src(chunk);
      for (int t = 0; t < n; ++t) {
        for (std::size_t i = 0; i < chunk; ++i) src[i] = pattern(me, t, i);
        win.put(ctx, me, src.data(), chunk, t,
                static_cast<std::size_t>(me) * chunk);
      }
      win.fence(ctx, me);
      std::size_t mismatches = 0;
      for (int s = 0; s < n; ++s) {
        for (std::size_t i = 0; i < chunk; ++i) {
          if (mine[static_cast<std::size_t>(s) * chunk + i] !=
              pattern(s, me, i)) {
            ++mismatches;
          }
        }
      }
      EXPECT_EQ(mismatches, 0u) << "rank " << me << " count " << count;
      world.win_free(ctx, win);
    });
  }
}

TEST_P(RmaParam, GetReadsEveryTargetEverySize) {
  const int n = GetParam().nranks;
  for (const std::size_t count : kCounts) {
    const std::size_t chunk = count * sizeof(Mat);
    std::vector<std::vector<std::uint8_t>> regions(
        static_cast<std::size_t>(n));
    for (auto& r : regions) r.assign(chunk, 0);
    rt_.run([&](mpi::Comm& world, ult::TaskContext& ctx) {
      const int me = world.rank(ctx);
      auto& mine = regions[static_cast<std::size_t>(me)];
      for (std::size_t i = 0; i < chunk; ++i) mine[i] = pattern(me, me, i);
      rma::Win& win = world.win_create(ctx, mine.data(), mine.size());
      win.fence(ctx, me);  // publish everyone's initialization
      std::vector<std::uint8_t> got(chunk);
      std::size_t mismatches = 0;
      for (int t = 0; t < n; ++t) {
        win.get(ctx, me, got.data(), chunk, t, 0);
        for (std::size_t i = 0; i < chunk; ++i) {
          if (got[i] != pattern(t, t, i)) ++mismatches;
        }
      }
      EXPECT_EQ(mismatches, 0u) << "rank " << me << " count " << count;
      world.win_free(ctx, win);
    });
  }
}

TEST_P(RmaParam, AccumulateFenceRoundsFoldInRankOrder) {
  const int n = GetParam().nranks;
  for (const std::size_t count : kCounts) {
    std::vector<std::vector<Mat>> regions(static_cast<std::size_t>(n));
    for (auto& r : regions) r.assign(count, kIdentity);
    rt_.run([&](mpi::Comm& world, ult::TaskContext& ctx) {
      const int me = world.rank(ctx);
      auto& mine = regions[static_cast<std::size_t>(me)];
      rma::Win& win =
          world.win_create(ctx, mine.data(), mine.size() * sizeof(Mat));
      const std::vector<Mat> my_contrib = make_contrib(me, count);
      // Every target rank accumulates contributions from all ranks; one
      // fence per round serializes the folds into ascending rank order,
      // so the non-commutative operator pins any ordering bug.
      for (int t = 0; t < n; ++t) {
        win.fence(ctx, me);
        for (int r = 0; r < n; ++r) {
          if (me == r) {
            win.accumulate(ctx, me, my_contrib.data(), count, sizeof(Mat),
                           mat_fn(), t, 0);
          }
          win.fence(ctx, me);
        }
      }
      const std::vector<Mat> ref = reference(n - 1, count);
      EXPECT_EQ(mine, ref) << "rank " << me << " count " << count;
      world.win_free(ctx, win);
    });
  }
}

TEST_P(RmaParam, AccumulateUnderExclusiveLockTurnOrder) {
  // Passive-target variant of the rank-order fold: rank 0's region holds
  // a turn word followed by the accumulator; each rank spins on the lock
  // until the turn word names it, folds its contribution, advances the
  // turn. The exclusive lock carries both mutual exclusion and the
  // acquire/release edges the turn-word handoff relies on.
  const int n = GetParam().nranks;
  const std::size_t count = 65;  // 1040 B payload
  struct Region {
    std::int64_t turn;
    Mat acc[65];
  };
  Region shared{};
  shared.turn = 0;
  std::fill(std::begin(shared.acc), std::end(shared.acc), kIdentity);
  rt_.run([&](mpi::Comm& world, ult::TaskContext& ctx) {
    const int me = world.rank(ctx);
    rma::Win& win = world.win_create(
        ctx, me == 0 ? static_cast<void*>(&shared) : nullptr,
        me == 0 ? sizeof shared : 0);
    const std::vector<Mat> my_contrib = make_contrib(me, count);
    bool done = false;
    while (!done) {
      win.lock(ctx, me, rma::LockKind::exclusive, 0);
      std::int64_t turn = -1;
      win.get(ctx, me, &turn, sizeof turn, 0, 0);
      if (turn == me) {
        win.accumulate(ctx, me, my_contrib.data(), count, sizeof(Mat),
                       mat_fn(), 0, offsetof(Region, acc));
        const std::int64_t next = turn + 1;
        win.put(ctx, me, &next, sizeof next, 0, 0);
        done = true;
      }
      win.unlock(ctx, me, 0);
      ctx.yield();
    }
    world.barrier(ctx);
    if (me == 0) {
      const std::vector<Mat> ref = reference(n - 1, count);
      const std::vector<Mat> got(std::begin(shared.acc),
                                 std::end(shared.acc));
      EXPECT_EQ(got, ref);
    }
    world.win_free(ctx, win);
  });
}

TEST(RmaObs, CountersAndEpisodesRecorded) {
  const int n = 2;
  obs::Recorder rec{obs::RecorderOptions{.ntasks = n}};
  topo::Machine machine = topo::Machine::nehalem_ex(2);
  mpi::Options o;
  o.nranks = n;
  o.obs = &rec;
  mpi::Runtime rt(machine, o);
  std::vector<std::vector<std::uint8_t>> regions(n,
                                                 std::vector<std::uint8_t>(64));
  rt.run([&](mpi::Comm& world, ult::TaskContext& ctx) {
    const int me = world.rank(ctx);
    auto& mine = regions[static_cast<std::size_t>(me)];
    rma::Win& win = world.win_create(ctx, mine.data(), mine.size());
    win.fence(ctx, me);
    if (me == 0) {
      std::uint8_t buf[48] = {};
      win.put(ctx, me, buf, 48, 1, 0);
      win.get(ctx, me, buf, 32, 1, 16);
    } else {
      const Mat m = contrib(1, 0);
      win.lock(ctx, me, rma::LockKind::exclusive, 1);
      win.accumulate(ctx, me, &m, 1, sizeof(Mat), mat_fn(), 1, 32);
      win.unlock(ctx, me, 1);
    }
    win.fence(ctx, me);
    world.win_free(ctx, win);
  });
#if HLSMPC_OBS_ENABLED
  const obs::Snapshot s = rec.snapshot();
  const auto total = [&](obs::Counter c) { return s.value(c); };
  EXPECT_EQ(total(obs::Counter::rma_puts), 1u);
  EXPECT_EQ(total(obs::Counter::rma_gets), 1u);
  EXPECT_EQ(total(obs::Counter::rma_accs), 1u);
  EXPECT_EQ(total(obs::Counter::rma_bytes), 48u + 32u + sizeof(Mat));
  EXPECT_EQ(total(obs::Counter::rma_locks), 1u);
  // Two explicit fences plus win_free's quiescing fence, per rank.
  EXPECT_EQ(total(obs::Counter::rma_fences), 6u);
  bool saw_op = false, saw_epoch = false, saw_lock_epoch = false;
  for (const obs::Event& e : rec.events()) {
    if (e.kind == obs::EventKind::rma_op) saw_op = true;
    if (e.kind == obs::EventKind::rma_epoch) {
      saw_epoch = true;
      if (e.arg == 2) saw_lock_epoch = true;  // exclusive lock episode
    }
  }
  EXPECT_TRUE(saw_op);
  EXPECT_TRUE(saw_epoch);
  EXPECT_TRUE(saw_lock_epoch);
#endif
}

// ---------- schedule exploration and the race checker ----------

namespace {

/// Fresh machine/checker pair per attempt (the checker observes the Win).
struct CheckedEnv {
  topo::Machine m = topo::Machine::generic(1, 2);
  topo::ScopeMap sm{m};
  check::HlsChecker checker;
  explicit CheckedEnv(int ntasks) : checker(sm, ntasks) {}
};

}  // namespace

TEST(RmaExplore, FencePublicationOrderingHoldsEverywhere) {
  // Rank 0 puts then fences; rank 1 fences then reads. Under every
  // explored interleaving the post-fence read sees the pre-fence write,
  // and the checker's happens-before pass stays clean.
  auto attempt = [](ult::Executor& ex) {
    CheckedEnv env(2);
    int r0 = 0, r1 = 0;
    rma::WinOptions o;
    o.observer = &env.checker;
    rma::Win win({{&r0, sizeof r0}, {&r1, sizeof r1}}, o);
    std::vector<int> pins{0, 1};
    int seen = -1;
    ex.run(2, pins, [&](ult::TaskContext& ctx) {
      const int me = ctx.task_id();
      if (me == 0) {
        const int v = 42;
        win.put(ctx, 0, &v, sizeof v, 1, 0);
        win.fence(ctx, 0);
      } else {
        win.fence(ctx, 1);
        win.get(ctx, 1, &seen, sizeof seen, 1, 0);
      }
    });
    if (seen != 42) {
      throw std::runtime_error("write before fence not visible after fence");
    }
    if (!env.checker.verify()) {
      throw std::runtime_error("checker violations:\n" +
                               env.checker.report());
    }
  };
  check::ExploreOptions eo;
  eo.schedules = 300;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
}

TEST(RmaExplore, SeededFencelessReadIsFoundAndReplays) {
  // The seeded bug: rank 1 reads with no fence at all. The explorer must
  // find a schedule where the read precedes the write, and the shrunk
  // trace must replay to the same failure.
  auto attempt = [](ult::Executor& ex) {
    int r0 = 0, r1 = 0;
    rma::Win win({{&r0, sizeof r0}, {&r1, sizeof r1}});
    std::vector<int> pins{0, 1};
    int seen = -1;
    ex.run(2, pins, [&](ult::TaskContext& ctx) {
      if (ctx.task_id() == 0) {
        const int v = 42;
        win.put(ctx, 0, &v, sizeof v, 1, 0);
      } else {
        win.get(ctx, 1, &seen, sizeof seen, 1, 0);
      }
    });
    if (seen != 42) throw std::runtime_error("stale read: no fence");
  };
  check::ExploreOptions eo;
  eo.schedules = 300;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res = explorer.explore(attempt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("stale read"), std::string::npos) << res.error;
  try {
    explorer.replay(attempt, res.failing_trace);
    FAIL() << "shrunk trace did not reproduce the failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stale read"), std::string::npos)
        << e.what();
  }
}

TEST(RmaExplore, ExclusiveLockMakesIncrementsAtomic) {
  auto attempt = [](ult::Executor& ex) {
    CheckedEnv env(2);
    int counter = 0;
    rma::WinOptions o;
    o.observer = &env.checker;
    rma::Win win({{&counter, sizeof counter}, {nullptr, 0}}, o);
    std::vector<int> pins{0, 1};
    ex.run(2, pins, [&](ult::TaskContext& ctx) {
      const int me = ctx.task_id();
      for (int i = 0; i < 2; ++i) {
        win.lock(ctx, me, rma::LockKind::exclusive, 0);
        int v = -1;
        win.get(ctx, me, &v, sizeof v, 0, 0);
        ctx.yield();  // widen the read-modify-write window
        ++v;
        win.put(ctx, me, &v, sizeof v, 0, 0);
        win.unlock(ctx, me, 0);
      }
    });
    if (counter != 4) {
      throw std::runtime_error("lost update: counter " +
                               std::to_string(counter));
    }
    if (!env.checker.verify()) {
      throw std::runtime_error("checker violations:\n" +
                               env.checker.report());
    }
  };
  check::ExploreOptions eo;
  eo.schedules = 300;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
}

TEST(RmaExplore, SeededLocklessIncrementLosesUpdates) {
  auto attempt = [](ult::Executor& ex) {
    int counter = 0;
    rma::Win win({{&counter, sizeof counter}, {nullptr, 0}});
    std::vector<int> pins{0, 1};
    ex.run(2, pins, [&](ult::TaskContext& ctx) {
      const int me = ctx.task_id();
      int v = -1;
      win.get(ctx, me, &v, sizeof v, 0, 0);
      ctx.yield();
      ++v;
      win.put(ctx, me, &v, sizeof v, 0, 0);
    });
    if (counter != 2) throw std::runtime_error("lost update");
  };
  check::ExploreOptions eo;
  eo.schedules = 300;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res = explorer.explore(attempt);
  ASSERT_FALSE(res.ok);
  EXPECT_NE(res.error.find("lost update"), std::string::npos) << res.error;
}

TEST(RmaExplore, SharedLockAdmitsReadersExcludesWriter) {
  // Readers overlap with each other but never with the writer, under
  // every explored schedule.
  auto attempt = [](ult::Executor& ex) {
    int data = 0;
    rma::Win win({{&data, sizeof data}, {nullptr, 0}, {nullptr, 0}});
    std::vector<int> pins{0, 1, 2};
    int readers_inside = 0;
    int writer_inside = 0;
    ex.run(3, pins, [&](ult::TaskContext& ctx) {
      const int me = ctx.task_id();
      if (me == 0) {
        win.lock(ctx, 0, rma::LockKind::exclusive, 0);
        ++writer_inside;
        if (readers_inside != 0) {
          throw std::runtime_error("reader inside writer's critical section");
        }
        const int v = 7;
        win.put(ctx, 0, &v, sizeof v, 0, 0);
        ctx.yield();
        if (readers_inside != 0) {
          throw std::runtime_error("reader entered under exclusive lock");
        }
        --writer_inside;
        win.unlock(ctx, 0, 0);
      } else {
        win.lock(ctx, me, rma::LockKind::shared, 0);
        ++readers_inside;
        if (writer_inside != 0) {
          throw std::runtime_error("writer inside readers' section");
        }
        int v = -1;
        win.get(ctx, me, &v, sizeof v, 0, 0);
        ctx.yield();
        --readers_inside;
        win.unlock(ctx, me, 0);
      }
    });
  };
  check::ExploreOptions eo;
  eo.schedules = 300;
  check::ScheduleExplorer explorer(eo);
  const check::ExploreResult res = explorer.explore(attempt);
  EXPECT_TRUE(res.ok) << res.repro;
}

TEST(RmaExplore, SharedLockReadersOverlapUnderRoundRobin) {
  // With a quantum-1 round robin both readers sit inside the shared
  // section at once — the lock really admits concurrency.
  int data = 0;
  rma::Win win({{&data, sizeof data}, {nullptr, 0}, {nullptr, 0}});
  int inside = 0, max_inside = 0;
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  std::vector<int> pins{0, 1, 2};
  ex.run(3, pins, [&](ult::TaskContext& ctx) {
    const int me = ctx.task_id();
    win.lock(ctx, me, rma::LockKind::shared, 0);
    ++inside;
    max_inside = std::max(max_inside, inside);
    ctx.yield();
    ctx.yield();
    --inside;
    win.unlock(ctx, me, 0);
  });
  EXPECT_GE(max_inside, 2);
}

TEST(RmaChecker, FlagsConflictNoEpochOrders) {
  // Deliberately racy: both tasks put to the same bytes with no fence and
  // no lock. Whatever the schedule, verify() must flag the pair.
  CheckedEnv env(2);
  std::uint8_t region[16] = {};
  rma::WinOptions o;
  o.observer = &env.checker;
  rma::Win win({{region, sizeof region}, {nullptr, 0}}, o);
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  std::vector<int> pins{0, 1};
  ex.run(2, pins, [&](ult::TaskContext& ctx) {
    const int me = ctx.task_id();
    const std::uint8_t v[8] = {static_cast<std::uint8_t>(me)};
    win.put(ctx, me, v, sizeof v, 0, 4);  // overlapping ranges
  });
  EXPECT_FALSE(env.checker.verify());
  bool found = false;
  for (const check::Diagnostic& d : env.checker.violations()) {
    if (d.code == check::Diagnostic::Code::rma_race) found = true;
  }
  EXPECT_TRUE(found) << env.checker.report();
}

TEST(RmaChecker, AcceptsFencedConflictAndDisjointRanges) {
  CheckedEnv env(2);
  std::uint8_t region[16] = {};
  rma::WinOptions o;
  o.observer = &env.checker;
  rma::Win win({{region, sizeof region}, {nullptr, 0}}, o);
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  std::vector<int> pins{0, 1};
  ex.run(2, pins, [&](ult::TaskContext& ctx) {
    const int me = ctx.task_id();
    const std::uint8_t v[4] = {static_cast<std::uint8_t>(me)};
    // Disjoint offsets race-free without any epoch…
    win.put(ctx, me, v, sizeof v, 0, static_cast<std::size_t>(me) * 4);
    win.fence(ctx, me);
    // …and the same bytes are fine once a fence separates the writers.
    if (me == 1) win.put(ctx, me, v, sizeof v, 0, 0);
  });
  EXPECT_TRUE(env.checker.verify()) << env.checker.report();
}

TEST(RmaChecker, LockChainOrdersCriticalSections) {
  // Two exclusive sections on one word, serialized by the real lock: the
  // unlock->lock chain must order their accesses (no rma_race).
  CheckedEnv env(2);
  int region = 0;
  rma::WinOptions o;
  o.observer = &env.checker;
  rma::Win win({{&region, sizeof region}, {nullptr, 0}}, o);
  check::RoundRobinPolicy policy(1, 0);
  check::DeterministicExecutor ex(policy);
  std::vector<int> pins{0, 1};
  ex.run(2, pins, [&](ult::TaskContext& ctx) {
    const int me = ctx.task_id();
    win.lock(ctx, me, rma::LockKind::exclusive, 0);
    const int v = me + 1;
    win.put(ctx, me, &v, sizeof v, 0, 0);
    win.unlock(ctx, me, 0);
  });
  EXPECT_TRUE(env.checker.verify()) << env.checker.report();
}

TEST(RmaChecker, FlagsSyntheticLockOverlap) {
  // Feed the checker an event stream no correct Win could emit: two
  // exclusive acquisitions of one word with no release between.
  topo::Machine m = topo::Machine::generic(1, 2);
  topo::ScopeMap sm(m);
  check::HlsChecker checker(sm, 2);
  hls::SyncEvent e;
  e.kind = hls::SyncEvent::Kind::rma_lock;
  e.task = 0;
  e.instance = 3;
  e.rma_target = 0;
  e.rma_excl = true;
  checker.on_sync_event(e);
  e.task = 1;
  checker.on_sync_event(e);
  EXPECT_FALSE(checker.ok());
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_EQ(checker.violations()[0].code,
            check::Diagnostic::Code::rma_lock_overlap);

  // Shared acquisition while a writer holds the word is the same class.
  check::HlsChecker checker2(sm, 2);
  e.task = 0;
  e.rma_excl = true;
  checker2.on_sync_event(e);
  e.task = 1;
  e.rma_excl = false;
  checker2.on_sync_event(e);
  EXPECT_FALSE(checker2.ok());
  EXPECT_EQ(checker2.violations()[0].code,
            check::Diagnostic::Code::rma_lock_overlap);
}

TEST(RmaChecker, FlagsSyntheticUnlockWithoutLockAndEpochRegression) {
  topo::Machine m = topo::Machine::generic(1, 2);
  topo::ScopeMap sm(m);
  check::HlsChecker checker(sm, 2);
  hls::SyncEvent e;
  e.kind = hls::SyncEvent::Kind::rma_unlock;
  e.task = 0;
  e.instance = 0;
  e.rma_target = 1;
  e.rma_excl = true;
  checker.on_sync_event(e);
  ASSERT_FALSE(checker.ok());
  EXPECT_EQ(checker.violations()[0].code,
            check::Diagnostic::Code::structural);

  check::HlsChecker checker2(sm, 2);
  e = hls::SyncEvent{};
  e.kind = hls::SyncEvent::Kind::rma_fence_enter;
  e.task = 0;
  e.instance = 0;
  e.task_count = 1;
  checker2.on_sync_event(e);
  checker2.on_sync_event(e);  // epoch did not advance
  ASSERT_FALSE(checker2.ok());
  EXPECT_EQ(checker2.violations()[0].code,
            check::Diagnostic::Code::counter_regression);
}
